//! A minimal, dependency-free property-testing harness.
//!
//! Promoted from `tests/support/proptest_lite.rs` so the integration
//! tests and the `bddfc-fuzz` binary share one seeding discipline:
//!
//! * deterministic: every case's seed is derived from a fixed base seed,
//!   the property name and the case index, so runs are reproducible
//!   bit-for-bit with no persistence files;
//! * self-describing failures: generators log every value they produce
//!   into the [`Gen`], and a failing case prints that log plus the case
//!   seed and a ready-to-paste `bddfc-fuzz --seed <n> --prop <name>`
//!   reproduction line;
//! * panic-safe: both `Err` returns and panics inside the property body
//!   are caught and reported with the failing input.
//!
//! There is no shrinking *here* — registry properties replayed through
//! `bddfc-fuzz` get the delta-debugging shrinker of [`crate::shrink`];
//! ad-hoc test properties draw small inputs by construction.

use bddfc_core::prng::SplitMix64;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Base seed for the whole suite. Changing it reshuffles every property's
/// inputs at once (useful for a soak run); keeping it fixed makes CI
/// deterministic.
pub const BASE_SEED: u64 = 0xBDDF_C0DE;

/// A seeded generator handed to each property case. Wraps the PRNG and
/// records a human-readable log of every drawn value for failure reports.
pub struct Gen {
    rng: SplitMix64,
    /// One entry per generator call: `"edges = [(0, 1), (2, 0)]"` etc.
    pub log: Vec<String>,
}

impl Gen {
    /// A generator for the given case seed.
    pub fn new(seed: u64) -> Self {
        Gen { rng: SplitMix64::new(seed), log: Vec::new() }
    }

    /// Draws a `usize` in `lo..hi` (half-open; `hi > lo`).
    pub fn usize_in(&mut self, name: &str, lo: usize, hi: usize) -> usize {
        let v = self.rng.range(lo, hi);
        self.log.push(format!("{name} = {v}"));
        v
    }

    /// Draws a `u64` in `lo..hi`.
    pub fn u64_in(&mut self, name: &str, lo: u64, hi: u64) -> u64 {
        let v = lo + self.rng.below((hi - lo) as usize) as u64;
        self.log.push(format!("{name} = {v}"));
        v
    }

    /// A random edge list over nodes `0..n`: between 1 and `max_edges - 1`
    /// pairs, mirroring proptest's `vec((0..n, 0..n), 1..max_edges)`.
    pub fn edges(&mut self, name: &str, n: u8, max_edges: usize) -> Vec<(u8, u8)> {
        let len = self.rng.range(1, max_edges);
        let pairs: Vec<(u8, u8)> = (0..len)
            .map(|_| {
                (
                    self.rng.below(n as usize) as u8,
                    self.rng.below(n as usize) as u8,
                )
            })
            .collect();
        self.log.push(format!("{name} = {pairs:?}"));
        pairs
    }
}

/// `Ok` or a failure message — what a property body returns.
pub type PropResult = Result<(), String>;

/// Fails the property with `msg` unless `cond` holds.
pub fn ensure(cond: bool, msg: &str) -> PropResult {
    if cond {
        Ok(())
    } else {
        Err(msg.to_string())
    }
}

/// Fails the property unless `a == b`, printing both sides.
pub fn ensure_eq<T: PartialEq + std::fmt::Debug>(a: T, b: T, msg: &str) -> PropResult {
    if a == b {
        Ok(())
    } else {
        Err(format!("{msg}: left = {a:?}, right = {b:?}"))
    }
}

/// Derives the deterministic seed of one case of one property.
fn case_seed(name: &str, case: u64) -> u64 {
    // Fold the property name into the base seed with the same SplitMix64
    // stream the cases use; the name only needs to decorrelate properties.
    let mut h = SplitMix64::new(BASE_SEED);
    let mut acc = h.next_u64();
    for b in name.bytes() {
        acc = SplitMix64::new(acc ^ b as u64).next_u64();
    }
    SplitMix64::new(acc ^ case).next_u64()
}

/// Runs one case body, catching both `Err` returns and panics.
pub fn run_case_caught(body: impl FnOnce() -> PropResult) -> PropResult {
    match catch_unwind(AssertUnwindSafe(body)) {
        Ok(r) => r,
        Err(panic) => {
            let msg = panic
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| panic.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic".to_string());
            Err(format!("panicked: {msg}"))
        }
    }
}

/// Runs `cases` seeded cases of the property; panics with the case seed,
/// the generator log and a `bddfc-fuzz` reproduction line on the first
/// failure (from an `Err` or a panic).
///
/// The reproduction line replays exactly when `name` is a registered
/// `bddfc-fuzz` property ([`crate::props::PROPS`]) driven through
/// [`crate::run_seeded_case`]; for ad-hoc test-local properties it still
/// names the seed that the printed generator log was drawn from.
pub fn run_prop(name: &str, cases: u64, mut body: impl FnMut(&mut Gen) -> PropResult) {
    for case in 0..cases {
        let seed = case_seed(name, case);
        let mut g = Gen::new(seed);
        let failure = match run_case_caught(AssertUnwindSafe(|| body(&mut g))) {
            Ok(()) => continue,
            Err(msg) => msg,
        };
        panic!(
            "property '{name}' failed at case {case}/{cases} (seed {seed:#x})\n\
             inputs:\n  {}\n\
             failure: {failure}\n\
             rerun: bddfc-fuzz --seed {seed:#x} --prop {name}",
            g.log.join("\n  "),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let mut n = 0;
        run_prop("always_ok", 5, |_g| {
            n += 1;
            Ok(())
        });
        assert_eq!(n, 5);
    }

    #[test]
    fn failure_message_carries_seed_and_repro_line() {
        let caught = catch_unwind(AssertUnwindSafe(|| {
            run_prop("always_fails", 3, |g| {
                let v = g.usize_in("v", 0, 10);
                Err(format!("boom {v}"))
            });
        }));
        let payload = caught.expect_err("property must fail");
        let msg = payload.downcast_ref::<String>().expect("string panic");
        assert!(msg.contains("property 'always_fails' failed at case 0/3"), "{msg}");
        assert!(msg.contains("rerun: bddfc-fuzz --seed 0x"), "{msg}");
        assert!(msg.contains("--prop always_fails"), "{msg}");
        assert!(msg.contains("v = "), "{msg}");
    }

    #[test]
    fn panics_are_reported_as_failures() {
        let caught = catch_unwind(AssertUnwindSafe(|| {
            run_prop("panicky", 1, |_g| panic!("kaboom"));
        }));
        let payload = caught.expect_err("property must fail");
        let msg = payload.downcast_ref::<String>().expect("string panic");
        assert!(msg.contains("panicked: kaboom"), "{msg}");
    }

    #[test]
    fn case_seeds_are_stable() {
        // Pin the derivation so `bddfc-fuzz --seed` repro lines stay
        // valid across refactors.
        assert_eq!(case_seed("x", 0), case_seed("x", 0));
        assert_ne!(case_seed("x", 0), case_seed("x", 1));
        assert_ne!(case_seed("x", 0), case_seed("y", 0));
    }
}
