//! `bddfc-fuzz`: a seeded, shrinking, corpus-replaying differential
//! fuzz harness across every engine pair in the workspace.
//!
//! The crate consolidates the repository's oracle density into one
//! subsystem (ROADMAP item 5):
//!
//! * [`gen`] — a deterministic generator of random Datalog∃ programs,
//!   stratified across the recognized classes (guarded, sticky, weakly
//!   acyclic, Theorem 3 fragment, unrestricted);
//! * [`props`] — the registry of differential properties: naive vs
//!   semi-naive chase, restricted-embeds-in-oblivious, certainty-depth
//!   strategy blindness, thread/obs invariance, witness-vs-oracle class
//!   recognizers, rewriting vs chase, lint stability;
//! * [`shrink`] — a greedy delta-debugging shrinker that reduces any
//!   failure to a minimal parseable reproducer;
//! * [`report`] — deterministic human- and machine-readable reports;
//! * [`proptest_lite`] — the seeded property harness shared with the
//!   integration tests (promoted from `tests/support/`).
//!
//! Everything is seeded and hermetic: a failure report always carries a
//! `bddfc-fuzz --seed <n> --prop <name>` line that replays it exactly,
//! and `bddfc-fuzz --replay tests/corpus` re-runs the committed corpus.

pub mod gen;
pub mod proptest_lite;
pub mod props;
pub mod report;
pub mod shrink;

use gen::{gen_case, FuzzCase};
use props::{Prop, PropCtx};
use proptest_lite::{run_case_caught, PropResult};
use report::{Failure, FuzzReport};
use std::time::{Duration, Instant};

/// Parses and checks one case against one property, catching panics.
///
/// A case that does not parse is itself a failure (generated cases must
/// always parse; corpus cases are validated earlier by the replayer).
pub fn check_case(case: &FuzzCase, prop: &Prop, ctx: &PropCtx) -> PropResult {
    let prog = match case.program() {
        Ok(p) => p,
        Err(e) => return Err(format!("case does not parse: {e}")),
    };
    run_case_caught(|| (prop.check)(case, &prog, ctx))
}

/// The canonical seed → case → verdict path shared by `--seed` replays,
/// the fuzz loop and `run_prop` reproduction lines: generate the case
/// for `seed`, check `prop`.
pub fn run_seeded_case(seed: u64, prop: &Prop, ctx: &PropCtx) -> (FuzzCase, PropResult) {
    let case = gen_case(seed);
    let verdict = check_case(&case, prop, ctx);
    (case, verdict)
}

/// Options for one fuzzing run.
pub struct FuzzOptions {
    /// Base seed; the per-case seeds are a fixed stream derived from it.
    pub seed: u64,
    /// Wall-clock budget. Checked *between* cases, so the executed case
    /// count is speed-dependent — which is why it is reported on stderr,
    /// never in the [`FuzzReport`].
    pub budget_ms: Option<u64>,
    /// Exact number of cases (overrides the budget when set).
    pub cases: Option<u64>,
    /// Properties to check, in registry order.
    pub props: Vec<&'static Prop>,
    /// Budgets + injected mutation.
    pub ctx: PropCtx,
}

/// Speed-dependent statistics, reported on stderr only.
#[derive(Debug, Default, Clone, Copy)]
pub struct FuzzStats {
    /// Cases generated and checked.
    pub cases: u64,
    /// Individual property checks executed.
    pub checks: u64,
    /// Shrink candidate evaluations.
    pub shrink_evals: u64,
}

fn origin_of(case: &FuzzCase) -> String {
    match case.strat {
        Some(s) => format!("seed {:#x}, strat {}", case.seed, s.name()),
        None => format!("seed {:#x}", case.seed),
    }
}

fn shrunk_failure(
    case: &FuzzCase,
    prop: &'static Prop,
    ctx: &PropCtx,
    message: String,
    repro: String,
    stats: &mut FuzzStats,
) -> Failure {
    let out = shrink::shrink(case, prop, ctx, &message, shrink::DEFAULT_MAX_EVALS);
    stats.shrink_evals += out.evals as u64;
    Failure {
        prop: prop.name,
        origin: origin_of(case),
        message: out.message,
        shrunk: out.case.src,
        repro,
    }
}

/// Runs the fuzz loop: draw case seeds from the base seed, check every
/// selected property on each case, stop (and shrink) at the first
/// failure or when the budget/case count runs out.
pub fn fuzz(opts: &FuzzOptions) -> (FuzzReport, FuzzStats) {
    let mut report = FuzzReport {
        mode: "fuzz",
        seed: Some(opts.seed),
        budget_ms: opts.budget_ms,
        props: opts.props.iter().map(|p| p.name).collect(),
        mutation: opts.ctx.mutation,
        ..Default::default()
    };
    let mut stats = FuzzStats::default();
    let deadline = opts
        .budget_ms
        .map(|ms| Instant::now() + Duration::from_millis(ms));
    let mut seeds = bddfc_core::prng::SplitMix64::new(opts.seed ^ 0xF0_22);
    loop {
        if let Some(cap) = opts.cases {
            if stats.cases >= cap {
                break;
            }
        } else if let Some(deadline) = deadline {
            if Instant::now() >= deadline {
                break;
            }
        } else if stats.cases >= 1 {
            break; // no budget and no count: single-case mode
        }
        let case_seed = seeds.next_u64();
        let case = gen_case(case_seed);
        stats.cases += 1;
        for prop in &opts.props {
            stats.checks += 1;
            if let Err(msg) = check_case(&case, prop, &opts.ctx) {
                let repro = format!("bddfc-fuzz --seed {case_seed:#x} --prop {}", prop.name);
                report.failures.push(shrunk_failure(
                    &case, prop, &opts.ctx, msg, repro, &mut stats,
                ));
                return (report, stats);
            }
        }
    }
    (report, stats)
}

/// Checks one explicit seed against the selected properties (the
/// `--seed S [--prop P]` replay mode). All failures are shrunk and
/// reported — this is the path `run_prop` reproduction lines re-enter.
pub fn run_single_seed(
    seed: u64,
    props: &[&'static Prop],
    ctx: &PropCtx,
) -> (FuzzReport, FuzzStats) {
    let mut report = FuzzReport {
        mode: "case",
        seed: Some(seed),
        props: props.iter().map(|p| p.name).collect(),
        mutation: ctx.mutation,
        ..Default::default()
    };
    let mut stats = FuzzStats { cases: 1, ..Default::default() };
    for prop in props {
        stats.checks += 1;
        let (case, verdict) = run_seeded_case(seed, prop, ctx);
        if let Err(msg) = verdict {
            let repro = format!("bddfc-fuzz --seed {seed:#x} --prop {}", prop.name);
            report
                .failures
                .push(shrunk_failure(&case, prop, ctx, msg, repro, &mut stats));
        }
    }
    (report, stats)
}

/// Replays corpus files (already read into memory as `(path, source)`
/// pairs, in deterministic path order).
///
/// A file that does not parse is *corrupt*, not a finding: the replay
/// aborts with `Err` so the CLI can exit 2, distinguishing a broken
/// checkout from a real engine discrepancy (exit 1).
pub fn replay_sources(
    files: &[(String, String)],
    props: &[&'static Prop],
    ctx: &PropCtx,
) -> Result<(FuzzReport, FuzzStats), String> {
    let mut report = FuzzReport {
        mode: "replay",
        props: props.iter().map(|p| p.name).collect(),
        mutation: ctx.mutation,
        ..Default::default()
    };
    let mut stats = FuzzStats::default();
    for (path, src) in files {
        let case = FuzzCase { seed: 0, strat: None, src: src.clone() };
        if let Err(e) = case.program() {
            return Err(format!("corrupt corpus file {path}: {e}"));
        }
        stats.cases += 1;
        let mut verdict = "ok";
        for prop in props {
            stats.checks += 1;
            if let Err(msg) = check_case(&case, prop, ctx) {
                verdict = "fail";
                let repro = format!("bddfc-fuzz --replay {path} --prop {}", prop.name);
                let mut failure =
                    shrunk_failure(&case, prop, ctx, msg, repro, &mut stats);
                failure.origin = path.clone();
                report.failures.push(failure);
                break;
            }
        }
        report.corpus.push((path.clone(), verdict));
    }
    Ok((report, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use props::{Mutation, PROPS};

    fn all_props() -> Vec<&'static Prop> {
        PROPS.iter().collect()
    }

    #[test]
    fn healthy_fuzz_run_is_clean_and_deterministic() {
        let opts = FuzzOptions {
            seed: 42,
            budget_ms: None,
            cases: Some(5),
            props: all_props(),
            ctx: PropCtx::default(),
        };
        let (a, sa) = fuzz(&opts);
        let (b, sb) = fuzz(&opts);
        assert!(a.clean(), "{}", a.render());
        assert_eq!(a.render(), b.render());
        assert_eq!(a.json(), b.json());
        assert_eq!(sa.cases, 5);
        assert_eq!(sa.checks, sb.checks);
    }

    #[test]
    fn mutated_fuzz_run_finds_and_shrinks_a_failure() {
        let opts = FuzzOptions {
            seed: 1,
            budget_ms: None,
            cases: Some(80),
            props: all_props(),
            ctx: PropCtx { mutation: Mutation::SkipLastRule, ..PropCtx::default() },
        };
        let (report, _) = fuzz(&opts);
        assert!(!report.clean(), "the known-bad mutation must be caught");
        let f = &report.failures[0];
        assert!(f.repro.starts_with("bddfc-fuzz --seed 0x"), "{}", f.repro);
        // The printed reproducer replays: re-running the seed under the
        // same mutation fails the same property.
        let seed_hex = f.repro.split_whitespace().nth(2).unwrap();
        let seed = u64::from_str_radix(seed_hex.trim_start_matches("0x"), 16).unwrap();
        let prop = props::find_prop(f.prop).unwrap();
        let (_, verdict) = run_seeded_case(seed, prop, &opts.ctx);
        assert!(verdict.is_err(), "repro line must replay the failure");
    }

    #[test]
    fn replay_flags_corrupt_files_as_errors_not_findings() {
        let files = vec![("bad.dlg".to_string(), "P(X ->".to_string())];
        let err = replay_sources(&files, &all_props(), &PropCtx::default()).unwrap_err();
        assert!(err.contains("corrupt corpus file bad.dlg"), "{err}");
    }

    #[test]
    fn replay_runs_clean_on_wellformed_sources() {
        let files = vec![(
            "mini.dlg".to_string(),
            "E(a,b).\nE(X,Y) -> exists Z . E(Y,Z).\n".to_string(),
        )];
        let (report, stats) =
            replay_sources(&files, &all_props(), &PropCtx::default()).unwrap();
        assert!(report.clean(), "{}", report.render());
        assert_eq!(report.corpus, vec![("mini.dlg".to_string(), "ok")]);
        assert_eq!(stats.cases, 1);
    }
}
