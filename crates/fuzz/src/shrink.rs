//! Greedy delta-debugging shrinker.
//!
//! Given a failing (case, property) pair, reduce the case source to a
//! local minimum while preserving the failure. Two phases, both
//! deterministic and bounded by an evaluation budget:
//!
//! 1. **statement level** — repeatedly try deleting each line (the
//!    generator and corpus format put exactly one statement per line),
//!    committing every deletion after which the property still fails;
//! 2. **atom level** — for each surviving rule line, try dropping each
//!    body atom and each head atom, re-rendering the rule through the
//!    pinned display syntax.
//!
//! The invariant, pinned by `tests/fuzz_props.rs`: every shrunk output
//! still parses and still fails the *same* property with the *same*
//! [`PropCtx`]. A candidate that fails a different way (e.g. stops
//! parsing) is rejected, so shrinking can only tighten a reproducer,
//! never corrupt it.

use crate::gen::FuzzCase;
use crate::props::{Prop, PropCtx};
use crate::proptest_lite::run_case_caught;
use bddfc_core::{parse_rule, Rule, Vocabulary};

/// Default candidate-evaluation budget; generated cases have at most
/// ~15 statements, so the greedy passes converge well under this.
pub const DEFAULT_MAX_EVALS: usize = 500;

/// The result of shrinking one failure.
#[derive(Debug)]
pub struct ShrinkOutcome {
    /// The minimized case (same seed/stratum labels, reduced source).
    pub case: FuzzCase,
    /// Failure message of the minimized case.
    pub message: String,
    /// Number of candidate evaluations spent.
    pub evals: usize,
}

struct Shrinker<'a> {
    prop: &'a Prop,
    ctx: &'a PropCtx,
    seed: u64,
    strat: Option<crate::gen::Strat>,
    evals: usize,
    max_evals: usize,
}

impl Shrinker<'_> {
    /// Runs the property on a candidate source. `Some(msg)` iff the
    /// candidate parses and still fails.
    fn still_fails(&mut self, src: &str) -> Option<String> {
        if self.evals >= self.max_evals {
            return None;
        }
        self.evals += 1;
        let case = FuzzCase { seed: self.seed, strat: self.strat, src: src.to_string() };
        let prog = case.program().ok()?;
        run_case_caught(|| (self.prop.check)(&case, &prog, self.ctx)).err()
    }

    /// Phase 1: greedy line deletion to a fixpoint.
    fn shrink_lines(&mut self, lines: &mut Vec<String>, message: &mut String) {
        let mut changed = true;
        while changed && self.evals < self.max_evals {
            changed = false;
            let mut i = 0;
            while i < lines.len() {
                if lines.len() == 1 {
                    break; // keep at least one statement
                }
                let mut candidate = lines.clone();
                candidate.remove(i);
                let src = candidate.join("\n");
                if let Some(msg) = self.still_fails(&src) {
                    *lines = candidate;
                    *message = msg;
                    changed = true;
                    // do not advance: the next line slid into slot i
                } else {
                    i += 1;
                }
            }
        }
    }

    /// Phase 2: per-rule atom deletion (body atoms, then extra head
    /// atoms), re-rendered through the display syntax the parser
    /// round-trips.
    fn shrink_atoms(&mut self, lines: &mut Vec<String>, message: &mut String) {
        let mut changed = true;
        while changed && self.evals < self.max_evals {
            changed = false;
            for i in 0..lines.len() {
                if !lines[i].contains("->") {
                    continue;
                }
                let mut voc = Vocabulary::new();
                let Ok(rule) = parse_rule(&lines[i], &mut voc) else { continue };
                let n_body = rule.body.len();
                let n_head = rule.head.len();
                for (which, len) in [(0usize, n_body), (1, n_head)] {
                    if len < 2 {
                        continue; // safety/shape requires ≥1 atom each side
                    }
                    for j in 0..len {
                        let mut body = rule.body.clone();
                        let mut head = rule.head.clone();
                        if which == 0 {
                            body.remove(j);
                        } else {
                            head.remove(j);
                        }
                        let slim = Rule::new(body, head);
                        let rendered = format!("{}.", slim.display(&voc));
                        let mut candidate = lines.clone();
                        candidate[i] = rendered;
                        let src = candidate.join("\n");
                        if let Some(msg) = self.still_fails(&src) {
                            *lines = candidate;
                            *message = msg;
                            changed = true;
                            break;
                        }
                    }
                    if changed {
                        break;
                    }
                }
                if changed {
                    break; // re-parse the mutated line on the next sweep
                }
            }
        }
    }
}

/// Shrinks a known-failing case with respect to `prop` under `ctx`.
///
/// `message` is the failure message of the original case (kept if no
/// smaller candidate survives). The returned case is guaranteed to parse
/// and to fail `prop`; comment and blank lines are stripped first so the
/// reproducer is pure statements.
pub fn shrink(
    case: &FuzzCase,
    prop: &Prop,
    ctx: &PropCtx,
    message: &str,
    max_evals: usize,
) -> ShrinkOutcome {
    let mut shrinker = Shrinker {
        prop,
        ctx,
        seed: case.seed,
        strat: case.strat,
        evals: 0,
        max_evals,
    };
    let mut lines: Vec<String> = case
        .src
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('%'))
        .map(str::to_string)
        .collect();
    let mut message = message.to_string();

    // Dropping the comments/blanks must not change the failure; if it
    // somehow does, fall back to the untouched source.
    match shrinker.still_fails(&lines.join("\n")) {
        Some(msg) => message = msg,
        None => {
            lines = case.src.lines().map(str::to_string).collect();
        }
    }

    shrinker.shrink_lines(&mut lines, &mut message);
    shrinker.shrink_atoms(&mut lines, &mut message);
    shrinker.shrink_lines(&mut lines, &mut message); // atom drops can free lines

    ShrinkOutcome {
        case: FuzzCase { seed: case.seed, strat: case.strat, src: lines.join("\n") },
        message,
        evals: shrinker.evals,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::gen_case;
    use crate::props::{find_prop, Mutation, PropCtx};

    /// Find a seed the known-bad mutation trips on, shrink it, and check
    /// the contract: output parses, still fails, and is genuinely small.
    #[test]
    fn shrinks_known_bad_mutation_to_a_minimal_reproducer() {
        let ctx = PropCtx { mutation: Mutation::SkipLastRule, ..PropCtx::default() };
        let prop = find_prop("chase_strategy_agreement").unwrap();
        let (case, msg) = (0..60)
            .find_map(|seed| {
                let case = gen_case(seed);
                let prog = case.program().unwrap();
                run_case_caught(|| (prop.check)(&case, &prog, &ctx))
                    .err()
                    .map(|m| (case, m))
            })
            .expect("mutation must be caught within 60 seeds");
        let out = shrink(&case, prop, &ctx, &msg, DEFAULT_MAX_EVALS);
        let prog = out.case.program().expect("shrunk case must parse");
        run_case_caught(|| (prop.check)(&out.case, &prog, &ctx))
            .expect_err("shrunk case must still fail");
        assert!(out.case.src.len() <= case.src.len());
        assert!(
            prog.theory.len() <= 5,
            "acceptance: shrunk to ≤ 5 rules, got {}:\n{}",
            prog.theory.len(),
            out.case.src
        );
    }

    #[test]
    fn shrinking_is_deterministic() {
        let ctx = PropCtx { mutation: Mutation::SkipLastRule, ..PropCtx::default() };
        let prop = find_prop("chase_strategy_agreement").unwrap();
        for seed in 0..60 {
            let case = gen_case(seed);
            let prog = case.program().unwrap();
            if let Err(msg) = run_case_caught(|| (prop.check)(&case, &prog, &ctx)) {
                let a = shrink(&case, prop, &ctx, &msg, DEFAULT_MAX_EVALS);
                let b = shrink(&case, prop, &ctx, &msg, DEFAULT_MAX_EVALS);
                assert_eq!(a.case.src, b.case.src);
                assert_eq!(a.message, b.message);
                assert_eq!(a.evals, b.evals);
                return;
            }
        }
        panic!("mutation must be caught within 60 seeds");
    }
}
