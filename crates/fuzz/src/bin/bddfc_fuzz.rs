//! `bddfc-fuzz` — seeded differential fuzzing across every engine pair.
//!
//! ```text
//! bddfc-fuzz --budget-ms 5000                  # fuzz fresh seeds for ~5s
//! bddfc-fuzz --seed 0x2a --cases 100           # fuzz 100 cases from a base seed
//! bddfc-fuzz --seed 0x1f2e --prop lint_stability   # replay one reported case
//! bddfc-fuzz --replay tests/corpus             # re-run the committed corpus
//! bddfc-fuzz --list-props                      # show the property registry
//! ```
//!
//! Exit codes: 0 clean, 1 a property was violated (the report carries a
//! minimized reproducer and a ready-to-paste rerun line), 2 usage/IO
//! errors (including a corrupt corpus file).
//!
//! The stdout report is a pure function of the seed, the property
//! selection and the verdicts — case throughput and timing go to stderr
//! — so a fixed invocation is byte-identical across runs, machines and
//! `BDDFC_THREADS` settings. `--mutate <name>` injects a deliberate
//! engine defect (see `bddfc_fuzz::props::Mutation`) to prove the
//! harness catches and shrinks real discrepancies; it is for testing
//! the fuzzer itself and is hidden from the usage text.

use bddfc_fuzz::props::{find_prop, Mutation, Prop, PropCtx, PROPS};
use bddfc_fuzz::{fuzz, replay_sources, run_single_seed, FuzzOptions};
use std::process::ExitCode;

struct Args {
    seed: Option<u64>,
    budget_ms: Option<u64>,
    cases: Option<u64>,
    props: Vec<&'static Prop>,
    replay: Option<String>,
    list_props: bool,
    json: bool,
    mutation: Mutation,
}

fn usage() -> ! {
    eprintln!(
        "usage: bddfc-fuzz [--seed N] [--budget-ms MS | --cases N] [--prop NAME]...\n\
         \x20                 [--replay PATH] [--list-props] [--json]\n\
         \n\
         --seed N           base seed (decimal or 0x-hex; default 1); with neither\n\
         \x20                  --budget-ms nor --cases, replays exactly that one case\n\
         --budget-ms MS     fuzz fresh seeds for MS milliseconds (MS > 0)\n\
         --cases N          fuzz exactly N cases (N > 0; overrides --budget-ms)\n\
         --prop NAME        check only this property (repeatable; default all)\n\
         --replay PATH      re-run a corpus: PATH is a .dlg file or a directory of them\n\
         --list-props       print the property registry and exit\n\
         --json             print one deterministic JSON document instead of text"
    );
    std::process::exit(2)
}

fn parse_u64(what: &str, s: &str) -> u64 {
    let parsed = match s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(hex, 16),
        None => s.parse(),
    };
    parsed.unwrap_or_else(|_| {
        eprintln!("{what} needs an unsigned integer, got {s:?}");
        usage()
    })
}

fn parse_args() -> Args {
    let mut args = Args {
        seed: None,
        budget_ms: None,
        cases: None,
        props: Vec::new(),
        replay: None,
        list_props: false,
        json: false,
        mutation: Mutation::None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut value = |what: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("{what} needs a value");
                usage()
            })
        };
        match a.as_str() {
            "--seed" => args.seed = Some(parse_u64("--seed", &value("--seed"))),
            "--budget-ms" => {
                let ms = parse_u64("--budget-ms", &value("--budget-ms"));
                if ms == 0 {
                    eprintln!("--budget-ms must be positive");
                    usage()
                }
                args.budget_ms = Some(ms);
            }
            "--cases" => {
                let n = parse_u64("--cases", &value("--cases"));
                if n == 0 {
                    eprintln!("--cases must be positive");
                    usage()
                }
                args.cases = Some(n);
            }
            "--prop" => {
                let name = value("--prop");
                let prop = find_prop(&name).unwrap_or_else(|| {
                    eprintln!(
                        "unknown prop {name:?}; see bddfc-fuzz --list-props"
                    );
                    usage()
                });
                if !args.props.iter().any(|p| p.name == prop.name) {
                    args.props.push(prop);
                }
            }
            "--replay" => args.replay = Some(value("--replay")),
            "--mutate" => {
                let name = value("--mutate");
                args.mutation = Mutation::parse(&name).unwrap_or_else(|| {
                    eprintln!("unknown mutation {name:?}");
                    usage()
                });
            }
            "--list-props" => args.list_props = true,
            "--json" => args.json = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument: {other}");
                usage()
            }
        }
    }
    args
}

/// Collects `(path, source)` pairs for `--replay`: one `.dlg` file, or
/// every `*.dlg` under a directory, in sorted path order.
fn read_corpus(path: &str) -> Result<Vec<(String, String)>, String> {
    let meta = std::fs::metadata(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let mut paths = Vec::new();
    if meta.is_dir() {
        let entries =
            std::fs::read_dir(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        for entry in entries {
            let entry = entry.map_err(|e| format!("cannot read {path}: {e}"))?;
            let p = entry.path();
            if p.extension().is_some_and(|ext| ext == "dlg") {
                paths.push(p.to_string_lossy().into_owned());
            }
        }
        paths.sort();
        if paths.is_empty() {
            return Err(format!("no .dlg files under {path}"));
        }
    } else {
        paths.push(path.to_string());
    }
    paths
        .into_iter()
        .map(|p| {
            std::fs::read_to_string(&p)
                .map(|src| (p.clone(), src))
                .map_err(|e| format!("cannot read {p}: {e}"))
        })
        .collect()
}

fn main() -> ExitCode {
    let args = parse_args();

    if args.list_props {
        for p in PROPS {
            println!("{:<36} {}", p.name, p.describe);
        }
        return ExitCode::SUCCESS;
    }

    let props: Vec<&'static Prop> = if args.props.is_empty() {
        PROPS.iter().collect()
    } else {
        args.props.clone()
    };
    let ctx = PropCtx { mutation: args.mutation, ..PropCtx::default() };

    let (report, stats) = if let Some(path) = &args.replay {
        let files = match read_corpus(path) {
            Ok(files) => files,
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::from(2);
            }
        };
        match replay_sources(&files, &props, &ctx) {
            Ok(pair) => pair,
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::from(2);
            }
        }
    } else if args.budget_ms.is_some() || args.cases.is_some() {
        let opts = FuzzOptions {
            seed: args.seed.unwrap_or(1),
            budget_ms: args.budget_ms,
            cases: args.cases,
            props,
            ctx,
        };
        fuzz(&opts)
    } else if let Some(seed) = args.seed {
        run_single_seed(seed, &props, &ctx)
    } else {
        eprintln!("nothing to do: pass --seed, --budget-ms, --cases or --replay");
        usage()
    };

    if args.json {
        println!("{}", report.json());
    } else {
        print!("{}", report.render());
    }
    eprintln!(
        "bddfc-fuzz: {} cases, {} checks, {} shrink evals",
        stats.cases, stats.checks, stats.shrink_evals
    );

    if report.clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
