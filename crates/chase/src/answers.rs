//! Chase-based certain answers and empirical derivation-depth probing.
//!
//! `D, T ⊨ Φ` iff `Chase(D,T) ⊨ Φ` (Section 1.1). Since the chase may be
//! infinite, the decision procedure here is a *semi*-decision sound in both
//! directions when it answers, and `Unknown` when the budget runs out:
//!
//! * if the query becomes true in some `Chaseᵏ` prefix — certainly true
//!   (the chase is monotone);
//! * if the chase reaches a fixpoint without the query — certainly false;
//! * otherwise — unknown.

use crate::engine::{chase, ChaseConfig, ChaseStepper, ChaseVariant};
use bddfc_core::obs::{EventSink, NULL};
use bddfc_core::{hom, ConjunctiveQuery, Instance, Theory, Ucq, Vocabulary};

/// Outcome of a budgeted certain-answer computation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Certainty {
    /// The query is certainly entailed: `Chaseᵏ(D,T) ⊨ Φ` for the reported
    /// depth `k` — the minimal prefix depth at which it became true.
    True(u32),
    /// The chase terminated without satisfying the query.
    False,
    /// Budget exhausted before either could be concluded.
    Unknown,
}

impl Certainty {
    /// Is the entailment settled (not [`Certainty::Unknown`])?
    pub fn is_decided(self) -> bool {
        !matches!(self, Certainty::Unknown)
    }

    /// `true` iff certainly entailed.
    pub fn is_true(self) -> bool {
        matches!(self, Certainty::True(_))
    }
}

/// Which budget a [`Certainty::Unknown`] ran out of. A caller picking a
/// retry policy needs the distinction: a round-budget stop retries with
/// more rounds, a fact-budget stop means the instance itself outgrew the
/// cap and more rounds alone will not help.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BudgetExhausted {
    /// `max_rounds` rounds ran without fixpoint or a witness.
    Rounds,
    /// The instance outgrew `max_facts` before either conclusion.
    Facts,
}

/// A [`Certainty`] plus *why* an undecided run stopped — kept separate
/// from the `Certainty` enum itself so existing exhaustive matches keep
/// compiling.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CertainOutcome {
    /// The verdict (what [`certain_ucq_with`] returns).
    pub certainty: Certainty,
    /// `Some` iff the verdict is [`Certainty::Unknown`]: the budget that
    /// stopped the run.
    pub exhausted: Option<BudgetExhausted>,
    /// Chase rounds actually executed (0 when the query already holds in
    /// the database or `max_rounds == 0`).
    pub rounds_run: u32,
}

/// Decides `D, T ⊨ Φ` by chasing within the budget, checking the query
/// after every round. Returns the minimal witnessing depth when true —
/// the empirical counterpart of the constant `k_Ψ` in the standard BDD
/// definition (Section 1.1).
pub fn certain_cq(
    db: &Instance,
    theory: &Theory,
    voc: &mut Vocabulary,
    query: &ConjunctiveQuery,
    config: ChaseConfig,
) -> Certainty {
    certain_ucq(db, theory, voc, &Ucq::single(query.clone()), config)
}

/// UCQ version of [`certain_cq`].
pub fn certain_ucq(
    db: &Instance,
    theory: &Theory,
    voc: &mut Vocabulary,
    query: &Ucq,
    config: ChaseConfig,
) -> Certainty {
    certain_ucq_with(db, theory, voc, query, config, &NULL)
}

/// Like [`certain_ucq`], but the underlying chase reports per-round
/// telemetry into `sink` (`chase`/`round` events) — this is where a
/// budgeted [`Certainty::Unknown`] shows *where* the work went.
pub fn certain_ucq_with<S: EventSink>(
    db: &Instance,
    theory: &Theory,
    voc: &mut Vocabulary,
    query: &Ucq,
    config: ChaseConfig,
    sink: &S,
) -> Certainty {
    certain_ucq_outcome_with(db, theory, voc, query, config, sink).certainty
}

/// Like [`certain_ucq`], but reports the full [`CertainOutcome`] —
/// including *which* budget an undecided run exhausted.
pub fn certain_ucq_outcome(
    db: &Instance,
    theory: &Theory,
    voc: &mut Vocabulary,
    query: &Ucq,
    config: ChaseConfig,
) -> CertainOutcome {
    certain_ucq_outcome_with(db, theory, voc, query, config, &NULL)
}

/// The instrumented entry point behind every `certain_*` function: the
/// full [`CertainOutcome`] with per-round telemetry into `sink`.
pub fn certain_ucq_outcome_with<S: EventSink>(
    db: &Instance,
    theory: &Theory,
    voc: &mut Vocabulary,
    query: &Ucq,
    config: ChaseConfig,
    sink: &S,
) -> CertainOutcome {
    if hom::satisfies_ucq(db, query) {
        return CertainOutcome { certainty: Certainty::True(0), exhausted: None, rounds_run: 0 };
    }
    let run_span = if S::ENABLED { sink.span_open("chase", "run", 0, None) } else { 0 };
    let mut stepper =
        ChaseStepper::with_sink(db, theory, config.variant, config.strategy, sink)
            .under_span(run_span);
    let mut certainty = Certainty::Unknown;
    // Unknown by default means the round budget ran dry — overwritten by
    // the fact-cap break below, cleared by any decision.
    let mut exhausted = Some(BudgetExhausted::Rounds);
    let mut rounds_run = 0;
    for round in 1..=config.max_rounds {
        let new_facts = stepper.step(voc);
        rounds_run = round;
        if new_facts.is_empty() {
            certainty = Certainty::False;
            exhausted = None;
            break;
        }
        if hom::satisfies_ucq(&stepper.instance, query) {
            certainty = Certainty::True(round);
            exhausted = None;
            break;
        }
        if stepper.instance.len() > config.max_facts {
            exhausted = Some(BudgetExhausted::Facts);
            break;
        }
    }
    if S::ENABLED {
        sink.span_close(run_span);
    }
    CertainOutcome { certainty, exhausted, rounds_run }
}

/// Empirically probes the derivation depth of a query over a family of
/// instances: the maximum, over the instances, of the minimal `k` with
/// `Chaseᵏ(D,T) ⊨ Φ` (instances not entailing Φ are skipped). A theory is
/// BDD iff this is bounded over *all* instances; the probe gives a lower
/// bound on `k_Φ` and is used by tests and benchmarks.
pub fn probe_depth(
    instances: &[Instance],
    theory: &Theory,
    voc: &mut Vocabulary,
    query: &ConjunctiveQuery,
    config: ChaseConfig,
) -> Option<u32> {
    let mut max = None;
    for db in instances {
        if let Certainty::True(k) = certain_cq(db, theory, voc, query, config) {
            max = Some(max.map_or(k, |m: u32| m.max(k)));
        }
    }
    max
}

/// Compares restricted and oblivious chase sizes on the same input — the
/// contrast drawn in Section 1.1 ("as opposed to the blind Chase").
pub fn chase_size_comparison(
    db: &Instance,
    theory: &Theory,
    voc: &mut Vocabulary,
    config: ChaseConfig,
) -> (usize, usize) {
    let restricted = chase(
        db,
        theory,
        &mut voc.clone(),
        ChaseConfig { variant: ChaseVariant::Restricted, ..config },
    );
    let oblivious = chase(
        db,
        theory,
        voc,
        ChaseConfig { variant: ChaseVariant::Oblivious, ..config },
    );
    (restricted.instance.len(), oblivious.instance.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use bddfc_core::parse_program;

    #[test]
    fn entailed_query_found_at_right_depth() {
        let prog = parse_program(
            "E(X,Y) -> exists Z . E(Y,Z).
             E(a,b).
             ?- E(X1,X2), E(X2,X3), E(X3,X4).",
        )
        .unwrap();
        let mut voc = prog.voc.clone();
        let c = certain_cq(
            &prog.instance,
            &prog.theory,
            &mut voc,
            &prog.queries[0],
            ChaseConfig::default(),
        );
        // Path of 3 edges needs 2 chase rounds beyond E(a,b).
        assert_eq!(c, Certainty::True(2));
    }

    #[test]
    fn non_entailed_query_on_terminating_chase() {
        let prog = parse_program(
            "E(X,Y) -> exists Z . E(Y,Z).
             E(a,a).
             ?- E(X,Y), E(Y,X), E(X,X), E(Y,Y), U(X).",
        )
        .unwrap();
        let mut voc = prog.voc.clone();
        let c = certain_cq(
            &prog.instance,
            &prog.theory,
            &mut voc,
            &prog.queries[0],
            ChaseConfig::default(),
        );
        assert_eq!(c, Certainty::False);
    }

    #[test]
    fn diverging_chase_with_never_true_query_is_unknown() {
        let prog = parse_program(
            "E(X,Y) -> exists Z . E(Y,Z).
             E(a,b).
             ?- E(X,X).",
        )
        .unwrap();
        let mut voc = prog.voc.clone();
        let c = certain_cq(
            &prog.instance,
            &prog.theory,
            &mut voc,
            &prog.queries[0],
            ChaseConfig::rounds(20),
        );
        assert_eq!(c, Certainty::Unknown);
    }

    #[test]
    fn query_true_in_db_is_depth_zero() {
        let prog = parse_program("E(a,b). ?- E(X,Y).").unwrap();
        let mut voc = prog.voc.clone();
        let c = certain_cq(
            &prog.instance,
            &Default::default(),
            &mut voc,
            &prog.queries[0],
            ChaseConfig::default(),
        );
        assert_eq!(c, Certainty::True(0));
    }

    #[test]
    fn fixpoint_on_exactly_the_last_allowed_round_is_decided() {
        // TC of a 2-edge path: round 1 derives E(a,c), round 2 is empty.
        // With max_rounds == 2 the empty round lands exactly on the
        // budget boundary and must still read as a decided False.
        let prog = parse_program(
            "E(X,Y), E(Y,Z) -> E(X,Z).
             E(a,b). E(b,c).
             ?- E(X,X).",
        )
        .unwrap();
        let mut voc = prog.voc.clone();
        let out = certain_ucq_outcome(
            &prog.instance,
            &prog.theory,
            &mut voc,
            &Ucq::single(prog.queries[0].clone()),
            ChaseConfig::rounds(2),
        );
        assert_eq!(out.certainty, Certainty::False);
        assert_eq!(out.exhausted, None);
        assert_eq!(out.rounds_run, 2);
        // One round fewer and the same program is honestly unknown, and
        // the reason is the round budget.
        let out = certain_ucq_outcome(
            &prog.instance,
            &prog.theory,
            &mut prog.voc.clone(),
            &Ucq::single(prog.queries[0].clone()),
            ChaseConfig::rounds(1),
        );
        assert_eq!(out.certainty, Certainty::Unknown);
        assert_eq!(out.exhausted, Some(BudgetExhausted::Rounds));
        assert_eq!(out.rounds_run, 1);
    }

    #[test]
    fn query_satisfied_on_the_round_the_fact_cap_trips_is_true() {
        // Round 1 grows the instance past max_facts *and* satisfies the
        // query; satisfaction is checked first, so the verdict is True —
        // a certain answer never retracts to Unknown over a budget.
        let prog = parse_program(
            "E(X,Y) -> exists Z . E(Y,Z).
             E(a,b).
             ?- E(X1,X2), E(X2,X3).",
        )
        .unwrap();
        let mut voc = prog.voc.clone();
        let out = certain_ucq_outcome(
            &prog.instance,
            &prog.theory,
            &mut voc,
            &Ucq::single(prog.queries[0].clone()),
            ChaseConfig { max_rounds: 8, max_facts: 1, ..ChaseConfig::default() },
        );
        assert_eq!(out.certainty, Certainty::True(1));
        assert_eq!(out.exhausted, None);
    }

    #[test]
    fn fact_budget_and_round_budget_are_distinguished() {
        let prog = parse_program(
            "E(X,Y) -> exists Z . E(Y,Z).
             E(a,b).
             ?- E(X,X).",
        )
        .unwrap();
        let q = Ucq::single(prog.queries[0].clone());
        let rounds = certain_ucq_outcome(
            &prog.instance,
            &prog.theory,
            &mut prog.voc.clone(),
            &q,
            ChaseConfig { max_rounds: 3, max_facts: 1_000_000, ..ChaseConfig::default() },
        );
        assert_eq!(rounds.certainty, Certainty::Unknown);
        assert_eq!(rounds.exhausted, Some(BudgetExhausted::Rounds));
        let facts = certain_ucq_outcome(
            &prog.instance,
            &prog.theory,
            &mut prog.voc.clone(),
            &q,
            ChaseConfig { max_rounds: 1_000, max_facts: 2, ..ChaseConfig::default() },
        );
        assert_eq!(facts.certainty, Certainty::Unknown);
        assert_eq!(facts.exhausted, Some(BudgetExhausted::Facts));
        assert!(facts.rounds_run < 1_000, "fact cap must stop the run early");
    }

    #[test]
    fn zero_round_budget_is_unknown_unless_the_db_already_witnesses() {
        let prog = parse_program(
            "E(X,Y) -> exists Z . E(Y,Z).
             E(a,b).
             ?- E(X,X).",
        )
        .unwrap();
        let out = certain_ucq_outcome(
            &prog.instance,
            &prog.theory,
            &mut prog.voc.clone(),
            &Ucq::single(prog.queries[0].clone()),
            ChaseConfig::rounds(0),
        );
        assert_eq!(out.certainty, Certainty::Unknown);
        assert_eq!(out.exhausted, Some(BudgetExhausted::Rounds));
        assert_eq!(out.rounds_run, 0);
        // A db-level witness short-circuits even at zero rounds.
        let hit = parse_program("E(a,a). ?- E(X,X).").unwrap();
        let out = certain_ucq_outcome(
            &hit.instance,
            &Default::default(),
            &mut hit.voc.clone(),
            &Ucq::single(hit.queries[0].clone()),
            ChaseConfig::rounds(0),
        );
        assert_eq!(out.certainty, Certainty::True(0));
        assert_eq!(out.exhausted, None);
        assert_eq!(out.rounds_run, 0);
    }

    #[test]
    fn probe_depth_takes_max_over_instances() {
        let prog = parse_program(
            "E(X,Y) -> exists Z . E(Y,Z).
             ?- E(X1,X2), E(X2,X3), E(X3,X4).",
        )
        .unwrap();
        let mut voc = prog.voc.clone();
        let d1 = bddfc_core::parse_into("E(a,b).", &mut voc).unwrap().1;
        let d2 = bddfc_core::parse_into("E(a,b). E(b,c). E(c,d).", &mut voc).unwrap().1;
        let depth = probe_depth(
            &[d1, d2],
            &prog.theory,
            &mut voc,
            &prog.queries[0],
            ChaseConfig::default(),
        );
        assert_eq!(depth, Some(2)); // max(2, 0)
    }

    #[test]
    fn restricted_never_larger_than_oblivious() {
        let prog = parse_program(
            "E(X,Y) -> exists Z . E(Y,Z).
             E(a,b). E(b,c). E(c,a).",
        )
        .unwrap();
        let mut voc = prog.voc.clone();
        let (r, o) = chase_size_comparison(
            &prog.instance,
            &prog.theory,
            &mut voc,
            ChaseConfig::rounds(6),
        );
        assert_eq!(r, 3); // cycle: every element has a successor
        assert!(o > r); // oblivious invents witnesses anyway
    }
}
