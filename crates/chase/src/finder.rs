//! A complete bounded-size finite model finder.
//!
//! Given a theory `T`, an instance `D`, an optional forbidden query `Φ` and
//! a size bound `N`, the finder searches for a finite `M ⊇ D` with
//! `M ⊨ T`, `M ⊭ Φ` and at most `N` domain elements — exactly the object
//! whose existence Finite Controllability (Definition 1) asserts.
//!
//! The search is a DFS over *repairs*: at each node it picks the first rule
//! violation and branches over all ways to supply witnesses — every
//! existing element, or one fresh element drawn from a canonical pool
//! (using the lowest-index unused pool element is a sound symmetry
//! reduction: unused pool elements are interchangeable). The search is
//! **complete**: if some model of size ≤ N avoiding Φ exists, the branch
//! that mirrors it (choose witnesses the model chooses) is explored, so
//! `NoModelWithin` answers are proofs of non-existence up to size N.
//!
//! This is the tool that demonstrates, computationally, the *failure* of FC
//! for the Section 5.5 "notorious example".

use bddfc_core::fxhash::FxHashSet;
use bddfc_core::obs::{Event, EventSink, SpanTimer, NULL};
use bddfc_core::par;
use bddfc_core::satisfaction::theory_violations;
use bddfc_core::{hom, ConjunctiveQuery, ConstId, Fact, Instance, Term, Theory, VarId, Vocabulary};

/// Limits for the model search.
#[derive(Clone, Copy, Debug)]
pub struct FinderConfig {
    /// Maximum number of domain elements in the model.
    pub max_size: usize,
    /// Maximum number of DFS nodes to expand before giving up.
    pub max_nodes: u64,
}

impl FinderConfig {
    /// Search for models of at most `max_size` elements with a default node
    /// budget.
    pub fn size(max_size: usize) -> Self {
        FinderConfig { max_size, max_nodes: 2_000_000 }
    }
}

/// Outcome of a bounded model search.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SearchOutcome {
    /// A model was found.
    Found(Instance),
    /// The search space up to the size bound was exhausted: **no** model of
    /// at most `max_size` elements exists (under the forbidden query).
    NoModelWithin(usize),
    /// The node budget ran out before the space was exhausted.
    Budget,
}

impl SearchOutcome {
    /// The model, if found.
    pub fn model(&self) -> Option<&Instance> {
        match self {
            SearchOutcome::Found(m) => Some(m),
            _ => None,
        }
    }
}

struct Finder<'a> {
    theory: &'a Theory,
    forbidden: Option<&'a ConjunctiveQuery>,
    pool: Vec<ConstId>,
    max_size: usize,
    nodes_left: u64,
    visited: FxHashSet<Vec<Fact>>,
    /// When this search runs as top-level branch `idx` of a parallel
    /// [`find_model`], the shared short-circuit flag. A branch abandons
    /// only once a *strictly earlier* branch has found a model — its own
    /// result is then discarded, so abandoning cannot change the outcome.
    cancel: Option<(&'a par::Cancel, usize)>,
}

enum Dfs {
    Found(Instance),
    Exhausted,
    Budget,
}

impl Finder<'_> {
    fn canonical_key(inst: &Instance) -> Vec<Fact> {
        let mut facts = inst.facts().to_vec();
        facts.sort_unstable();
        facts
    }

    fn dfs(&mut self, inst: &Instance) -> Dfs {
        if let Some((cancel, idx)) = self.cancel {
            if cancel.superseded(idx) {
                return Dfs::Exhausted; // discarded by the combiner anyway
            }
        }
        if self.nodes_left == 0 {
            return Dfs::Budget;
        }
        self.nodes_left -= 1;
        if let Some(q) = self.forbidden {
            if hom::satisfies_cq(inst, q) {
                return Dfs::Exhausted; // dead branch: query is monotone
            }
        }
        let violations = theory_violations(inst, self.theory);
        let Some(violation) = violations.first() else {
            return Dfs::Found(inst.clone());
        };
        let rule = &self.theory.rules[violation.rule_idx];
        let mut ex: Vec<VarId> = rule.existential_vars().into_iter().collect();
        ex.sort_unstable();

        // Candidate witnesses: every current domain element, plus the first
        // unused pool element (fresh elements are interchangeable).
        let mut domain = inst.sorted_domain();
        if domain.len() < self.max_size {
            if let Some(&fresh) = self.pool.iter().find(|c| !inst.in_domain(**c)) {
                domain.push(fresh);
            }
        }

        // Enumerate all assignments of `ex` to candidates.
        let mut assignment = vec![0usize; ex.len()];
        let mut budget_hit = false;
        loop {
            let mut binding = violation.binding.clone();
            for (i, &v) in ex.iter().enumerate() {
                binding.insert(v, domain[assignment[i]]);
            }
            let mut next = inst.clone();
            let mut ok = true;
            for atom in &rule.head {
                let grounded = atom.apply(&|v| binding.get(&v).map(|&c| Term::Const(c)));
                match grounded.to_fact() {
                    Some(f) => {
                        next.insert(f);
                    }
                    None => ok = false,
                }
            }
            if ok && next.domain_size() <= self.max_size {
                let key = Self::canonical_key(&next);
                if self.visited.insert(key) {
                    match self.dfs(&next) {
                        Dfs::Found(m) => return Dfs::Found(m),
                        Dfs::Budget => budget_hit = true,
                        Dfs::Exhausted => {}
                    }
                }
            }
            // Advance the odometer; empty `ex` means a single iteration.
            if ex.is_empty() {
                break;
            }
            let mut i = 0;
            loop {
                assignment[i] += 1;
                if assignment[i] < domain.len() {
                    break;
                }
                assignment[i] = 0;
                i += 1;
                if i == ex.len() {
                    break;
                }
            }
            if i == ex.len() {
                break;
            }
        }
        if budget_hit {
            Dfs::Budget
        } else {
            Dfs::Exhausted
        }
    }
}

/// Searches for a finite model `M ⊇ db`, `M ⊨ theory`, `M ⊭ forbidden`
/// with at most `config.max_size` elements.
///
/// The root node is expanded sequentially; its child branches are
/// independent searches (each with a fresh memo table and a node budget of
/// `max_nodes - 1`) and explore on separate threads. The branch list is in
/// the canonical odometer order and the combiner reports the
/// lowest-index found model, so the outcome is identical at any thread
/// count: every branch below the winner always runs to completion, and a
/// branch's verdict is a pure function of its instance and budget.
pub fn find_model(
    db: &Instance,
    theory: &Theory,
    voc: &mut Vocabulary,
    forbidden: Option<&ConjunctiveQuery>,
    config: FinderConfig,
) -> SearchOutcome {
    find_model_with(db, theory, voc, forbidden, config, &NULL)
}

/// Like [`find_model`], but reports one `finder`/`search` event into
/// `sink` when the search concludes. Fields: `branches` (root branches
/// opened), `cancelled` (branches whose results the lowest-winner rule
/// discards, i.e. those after the winning index — a deterministic count,
/// unlike the timing-dependent mid-run cancellations), `winner` (1-based
/// winning branch index, 0 if none), `found`, `budget_hit`; gauges:
/// `wall_ns`, `threads`.
pub fn find_model_with<S: EventSink>(
    db: &Instance,
    theory: &Theory,
    voc: &mut Vocabulary,
    forbidden: Option<&ConjunctiveQuery>,
    config: FinderConfig,
    sink: &S,
) -> SearchOutcome {
    let timer = SpanTimer::start();
    let span = if S::ENABLED { sink.span_open("finder", "search", 0, None) } else { 0 };
    let (outcome, branches, winner) = find_model_impl(db, theory, voc, forbidden, config);
    if S::ENABLED {
        let cancelled = winner.map_or(0, |w| branches.saturating_sub(w as u64 + 1));
        sink.record(Event {
            engine: "finder",
            name: "search",
            parent: span,
            key: None,
            fields: &[
                ("branches", branches),
                ("cancelled", cancelled),
                ("winner", winner.map_or(0, |w| w as u64 + 1)),
                ("found", u64::from(matches!(outcome, SearchOutcome::Found(_)))),
                ("budget_hit", u64::from(matches!(outcome, SearchOutcome::Budget))),
            ],
            gauges: &[
                ("wall_ns", timer.elapsed_ns()),
                ("threads", par::num_threads() as u64),
            ],
        });
        sink.span_close(span);
    }
    outcome
}

/// The search body shared by [`find_model`] and [`find_model_with`];
/// besides the outcome it reports how many root branches were opened and
/// which one (if any) produced the winning model.
fn find_model_impl(
    db: &Instance,
    theory: &Theory,
    voc: &mut Vocabulary,
    forbidden: Option<&ConjunctiveQuery>,
    config: FinderConfig,
) -> (SearchOutcome, u64, Option<usize>) {
    let base_elems = db.domain_size();
    let pool_size = config.max_size.saturating_sub(base_elems);
    let pool: Vec<ConstId> = (0..pool_size).map(|_| voc.fresh_null("w")).collect();

    // Expand the root by hand — one `dfs` step's worth of budget and the
    // same child enumeration — so the branches can fan out.
    if config.max_nodes == 0 {
        return (SearchOutcome::Budget, 0, None);
    }
    if let Some(q) = forbidden {
        if hom::satisfies_cq(db, q) {
            return (SearchOutcome::NoModelWithin(config.max_size), 0, None);
        }
    }
    let violations = theory_violations(db, theory);
    let Some(violation) = violations.first() else {
        return (SearchOutcome::Found(db.clone()), 0, None);
    };
    let rule = &theory.rules[violation.rule_idx];
    let mut ex: Vec<VarId> = rule.existential_vars().into_iter().collect();
    ex.sort_unstable();

    // Candidate witnesses: every current domain element, plus the first
    // unused pool element (fresh elements are interchangeable).
    let mut domain = db.sorted_domain();
    if domain.len() < config.max_size {
        if let Some(&fresh) = pool.iter().find(|c| !db.in_domain(**c)) {
            domain.push(fresh);
        }
    }

    // Enumerate the root's children in canonical odometer order,
    // deduplicated among themselves.
    let mut branches: Vec<Instance> = Vec::new();
    if !ex.is_empty() && domain.is_empty() {
        return (SearchOutcome::NoModelWithin(config.max_size), 0, None);
    }
    let mut seen: FxHashSet<Vec<Fact>> = FxHashSet::default();
    let mut assignment = vec![0usize; ex.len()];
    loop {
        let mut binding = violation.binding.clone();
        for (i, &v) in ex.iter().enumerate() {
            binding.insert(v, domain[assignment[i]]);
        }
        let mut next = db.clone();
        let mut ok = true;
        for atom in &rule.head {
            let grounded = atom.apply(&|v| binding.get(&v).map(|&c| Term::Const(c)));
            match grounded.to_fact() {
                Some(f) => {
                    next.insert(f);
                }
                None => ok = false,
            }
        }
        if ok && next.domain_size() <= config.max_size && seen.insert(Finder::canonical_key(&next))
        {
            branches.push(next);
        }
        // Advance the odometer; empty `ex` means a single iteration.
        if ex.is_empty() {
            break;
        }
        let mut i = 0;
        loop {
            assignment[i] += 1;
            if assignment[i] < domain.len() {
                break;
            }
            assignment[i] = 0;
            i += 1;
            if i == ex.len() {
                break;
            }
        }
        if i == ex.len() {
            break;
        }
    }

    let branch_budget = config.max_nodes - 1;
    let outcomes: Vec<Dfs> = par::par_map_cancel(&branches, |idx, inst, cancel| {
        let mut finder = Finder {
            theory,
            forbidden,
            pool: pool.clone(),
            max_size: config.max_size,
            nodes_left: branch_budget,
            visited: FxHashSet::default(),
            cancel: Some((cancel, idx)),
        };
        let out = finder.dfs(inst);
        if matches!(out, Dfs::Found(_)) {
            cancel.win(idx);
        }
        out
    });

    // Combine exactly as the sequential child loop did: the first found
    // model wins; a budget hit anywhere else taints exhaustion.
    let opened = branches.len() as u64;
    let mut budget_hit = false;
    for (idx, out) in outcomes.into_iter().enumerate() {
        match out {
            Dfs::Found(m) => return (SearchOutcome::Found(m), opened, Some(idx)),
            Dfs::Budget => budget_hit = true,
            Dfs::Exhausted => {}
        }
    }
    let outcome = if budget_hit {
        SearchOutcome::Budget
    } else {
        SearchOutcome::NoModelWithin(config.max_size)
    };
    (outcome, opened, None)
}

/// Convenience wrapper asking the FC question at a fixed size: is there a
/// finite model of `db, theory` of size ≤ N in which `query` is false?
pub fn countermodel(
    db: &Instance,
    theory: &Theory,
    voc: &mut Vocabulary,
    query: &ConjunctiveQuery,
    max_size: usize,
) -> SearchOutcome {
    find_model(db, theory, voc, Some(query), FinderConfig::size(max_size))
}

#[cfg(test)]
mod tests {
    use super::*;
    use bddfc_core::parse_program;
    use bddfc_core::satisfaction::satisfies_theory;

    #[test]
    fn successor_rule_folds_into_cycle() {
        let prog = parse_program("E(X,Y) -> exists Z . E(Y,Z). E(a,b).").unwrap();
        let mut voc = prog.voc.clone();
        let out = find_model(&prog.instance, &prog.theory, &mut voc, None, FinderConfig::size(3));
        let m = out.model().expect("model exists");
        assert!(satisfies_theory(m, &prog.theory));
        assert!(m.models(&prog.instance));
        assert!(m.domain_size() <= 3);
    }

    #[test]
    fn countermodel_for_fc_theory_found() {
        // Chase of E(a,b) under the successor rule never has E(X,X);
        // a finite countermodel avoiding loops needs a 2-cycle b->c->b or
        // similar: E(X,X) must stay false.
        let prog = parse_program(
            "E(X,Y) -> exists Z . E(Y,Z). E(a,b). ?- E(X,X).",
        )
        .unwrap();
        let mut voc = prog.voc.clone();
        let out = countermodel(&prog.instance, &prog.theory, &mut voc, &prog.queries[0], 4);
        let m = out.model().expect("countermodel exists");
        assert!(satisfies_theory(m, &prog.theory));
        assert!(!hom::satisfies_cq(m, &prog.queries[0]));
    }

    #[test]
    fn impossible_size_is_exhausted() {
        // With only 1 element available, E(a,b) forces 2 elements — in
        // fact the db alone already needs two, so no model of size 1.
        let prog = parse_program("E(X,Y) -> exists Z . E(Y,Z). E(a,b).").unwrap();
        let mut voc = prog.voc.clone();
        let out = find_model(&prog.instance, &prog.theory, &mut voc, None, FinderConfig::size(1));
        assert_eq!(out, SearchOutcome::NoModelWithin(1));
    }

    #[test]
    fn forbidden_query_prunes_to_exhaustion() {
        // Forbid every edge: E(a,b) itself violates it, no model at all.
        let prog = parse_program("E(a,b). ?- E(X,Y).").unwrap();
        let mut voc = prog.voc.clone();
        let out = countermodel(&prog.instance, &Default::default(), &mut voc, &prog.queries[0], 5);
        assert_eq!(out, SearchOutcome::NoModelWithin(5));
    }

    #[test]
    fn datalog_rules_are_applied_deterministically() {
        let prog = parse_program(
            "E(X,Y), E(Y,Z) -> E(X,Z). E(a,b). E(b,c).",
        )
        .unwrap();
        let mut voc = prog.voc.clone();
        let out = find_model(&prog.instance, &prog.theory, &mut voc, None, FinderConfig::size(3));
        let m = out.model().unwrap();
        assert_eq!(m.len(), 3); // transitive closure, no choice points
    }

    #[test]
    fn notorious_example_has_no_small_countermodel() {
        // Section 5.5: T = { E(x,y) -> ∃z E(y,z);
        //                    R(x,y), E(x,x'), E(y,z), E(z,y') -> R(x',y') }
        // D = { E(a0,a1), R(a0,a0) }, Φ = E(x,y) ∧ R(y,y).
        // The paper proves every finite model satisfies Φ; we verify it
        // computationally up to size 4.
        let prog = parse_program(
            "E(X,Y) -> exists Z . E(Y,Z).
             R(X,Y), E(X,X2), E(Y,Z), E(Z,Y2) -> R(X2,Y2).
             E(a0,a1). R(a0,a0).
             ?- E(X,Y), R(Y,Y).",
        )
        .unwrap();
        let mut voc = prog.voc.clone();
        let out = countermodel(&prog.instance, &prog.theory, &mut voc, &prog.queries[0], 4);
        assert_eq!(out, SearchOutcome::NoModelWithin(4));
    }

    #[test]
    fn notorious_example_without_forbidden_query_has_model() {
        // Sanity: dropping the ¬Φ constraint, a small model exists.
        let prog = parse_program(
            "E(X,Y) -> exists Z . E(Y,Z).
             R(X,Y), E(X,X2), E(Y,Z), E(Z,Y2) -> R(X2,Y2).
             E(a0,a1). R(a0,a0).",
        )
        .unwrap();
        let mut voc = prog.voc.clone();
        let out = find_model(&prog.instance, &prog.theory, &mut voc, None, FinderConfig::size(4));
        let m = out.model().expect("model exists");
        assert!(satisfies_theory(m, &prog.theory));
    }

    #[test]
    fn sink_reports_branches_and_winner() {
        use bddfc_core::obs::Memory;
        let prog = parse_program("E(X,Y) -> exists Z . E(Y,Z). E(a,b).").unwrap();
        let sink = Memory::new(8);
        let mut voc = prog.voc.clone();
        let out = find_model_with(
            &prog.instance,
            &prog.theory,
            &mut voc,
            None,
            FinderConfig::size(3),
            &sink,
        );
        assert!(out.model().is_some());
        assert_eq!(sink.event_counts(), vec![(("finder", "search"), 1)]);
        assert_eq!(sink.counter("finder", "search", "found"), 1);
        let branches = sink.counter("finder", "search", "branches");
        let winner = sink.counter("finder", "search", "winner");
        let cancelled = sink.counter("finder", "search", "cancelled");
        assert!(branches >= 1);
        assert!(winner >= 1 && winner <= branches);
        // Deterministic definition: everything after the winner counts as
        // cancelled, regardless of actual mid-run timing.
        assert_eq!(cancelled, branches - winner);
    }

    #[test]
    fn budget_is_reported() {
        let prog = parse_program(
            "E(X,Y) -> exists Z . E(Y,Z).
             E(X,Y) -> exists Z . F(Y,Z).
             F(X,Y) -> exists Z . E(Y,Z).
             E(a,b).",
        )
        .unwrap();
        let mut voc = prog.voc.clone();
        let out = find_model(
            &prog.instance,
            &prog.theory,
            &mut voc,
            None,
            // One node suffices only to expand the root; its first repair
            // then exhausts the budget before any model can be completed.
            FinderConfig { max_size: 12, max_nodes: 1 },
        );
        assert_eq!(out, SearchOutcome::Budget);
    }
}
