//! Incremental chase maintenance: a resident chased instance that
//! absorbs fact insertions as semi-naive delta rounds and fact
//! retractions by DRed-style over-delete/re-derive.
//!
//! ## Why insertion is "just another round"
//!
//! A semi-naive chase round enumerates only triggers that join at least
//! one fact from the previous round's delta — the invariant being that
//! every trigger contained entirely in older facts was already processed
//! (repaired, or skipped because a witness existed; the chase never
//! deletes, so the witness persists). An *insertion into a fixpoint
//! instance* satisfies exactly the same invariant with the inserted
//! facts as the delta, so [`IncrementalChase::insert_with`] simply
//! appends the new facts and resumes the engine's [`ChaseStepper`] with
//! them as the pending delta: rounds already applied are never re-run,
//! and only rules whose bodies can touch the delta re-fire.
//!
//! ## Why retraction needs provenance
//!
//! The chase is monotone; deletion is not. Removing a base fact may
//! invalidate derived facts, which may invalidate further facts, while
//! other copies remain independently derivable. The classical answer is
//! **DRed** (delete-and-rederive): over-delete everything whose recorded
//! derivation (transitively) used a deleted fact, then re-run the chase
//! on the survivors so anything with an alternative derivation comes
//! back. To support this, maintenance rounds run through
//! [`ChaseStepper::step_traced`], recording one canonical derivation
//! ([`Derivation`], the same structure `trace::traced_chase` produces)
//! per derived fact.
//!
//! The maintained invariant, restored after every mutation: **every
//! resident fact is a base fact or carries a recorded derivation whose
//! premises are themselves resident**. By induction every resident fact
//! has a full derivation tree over the current base, so the resident
//! instance maps homomorphically into every model of (base, theory) —
//! which is what makes resident-instance query answers *certain*
//! answers (a query witnessed in the resident instance is certainly
//! entailed even before fixpoint; "certainly false" additionally needs
//! the fixpoint flag).
//!
//! The maintained chase is always the restricted variant under
//! semi-naive evaluation — the pair whose resumption invariant the
//! module relies on (restricted admission is stateless; oblivious
//! resumption would need the fired set carried across mutations).

use crate::answers::BudgetExhausted;
use crate::engine::{ChaseStepper, ChaseStrategy, ChaseVariant};
use crate::trace::{Derivation, DerivationTree, TracedChase};
use bddfc_core::fxhash::{FxHashMap, FxHashSet};
use bddfc_core::obs::{EventSink, NULL};
use bddfc_core::{Fact, Instance, Theory, Vocabulary};

/// Per-mutation resource limits for incremental maintenance — the
/// analogue of [`crate::engine::ChaseConfig`] for a single
/// insert/retract's closure rounds.
#[derive(Clone, Copy, Debug)]
pub struct MaintainConfig {
    /// Maximum closure rounds one mutation may run.
    pub max_rounds: u32,
    /// Stop (incomplete) once the instance exceeds this many facts.
    pub max_facts: usize,
}

impl Default for MaintainConfig {
    fn default() -> Self {
        MaintainConfig { max_rounds: 64, max_facts: 1_000_000 }
    }
}

/// What one mutation did to the resident instance.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MaintainOutcome {
    /// Facts added to the instance by this mutation (inserted base facts
    /// that were genuinely new, plus everything its closure rounds
    /// derived — for a retraction, everything re-derivation brought
    /// back).
    pub new_facts: usize,
    /// Base facts actually removed (retraction only).
    pub retracted: usize,
    /// Derived facts removed by the DRed over-deletion cascade, beyond
    /// the retracted base facts themselves (retraction only; counts
    /// facts later re-derived too).
    pub overdeleted: usize,
    /// Closure rounds this mutation ran.
    pub rounds: u32,
    /// Whether the resident instance is at a fixpoint of the theory.
    pub complete: bool,
    /// `Some` iff `!complete`: which budget stopped the closure.
    pub exhausted: Option<BudgetExhausted>,
    /// Resident instance size after the mutation.
    pub facts_total: usize,
}

/// A resident chased instance with provenance, maintained incrementally
/// under fact insertions and retractions (see the module docs).
pub struct IncrementalChase {
    theory: Theory,
    /// Base (extensional) facts, in first-insertion order.
    base: Vec<Fact>,
    base_set: FxHashSet<Fact>,
    /// The resident instance: base plus everything derived so far.
    instance: Instance,
    /// One recorded derivation per derived resident fact.
    provenance: FxHashMap<Fact, Derivation>,
    /// Start of the unprocessed suffix of `instance.facts()` — equal to
    /// `instance.len()` exactly when the closure is complete.
    delta_start: usize,
    complete: bool,
    exhausted: Option<BudgetExhausted>,
    rounds_total: u64,
    overdeleted_total: u64,
    rederived_total: u64,
    /// Static cardinality priors for the batch join planner (see
    /// [`IncrementalChase::with_priors`]).
    priors: Option<bddfc_core::Priors>,
}

impl IncrementalChase {
    /// An empty maintained instance under `theory`. Empty instances are
    /// vacuously at fixpoint (rule bodies are non-empty).
    pub fn new(theory: &Theory) -> Self {
        IncrementalChase {
            theory: theory.clone(),
            base: Vec::new(),
            base_set: FxHashSet::default(),
            instance: Instance::new(),
            provenance: FxHashMap::default(),
            delta_start: 0,
            complete: true,
            exhausted: None,
            rounds_total: 0,
            overdeleted_total: 0,
            rederived_total: 0,
            priors: None,
        }
    }

    /// Seeds every closure's batch join planner with static cardinality
    /// priors (from the `bddfc-analyze` cost model). Priors are
    /// tie-breakers below live cardinalities, so the maintained instance
    /// is identical with or without them; only join work can differ.
    pub fn with_priors(mut self, priors: bddfc_core::Priors) -> Self {
        self.priors = (!priors.is_empty()).then_some(priors);
        self
    }

    /// The resident instance.
    pub fn instance(&self) -> &Instance {
        &self.instance
    }

    /// The theory the instance is maintained under.
    pub fn theory(&self) -> &Theory {
        &self.theory
    }

    /// Current base facts, in first-insertion order.
    pub fn base(&self) -> &[Fact] {
        &self.base
    }

    /// Whether the resident instance is at a fixpoint of the theory.
    pub fn complete(&self) -> bool {
        self.complete
    }

    /// Which budget stopped the last incomplete closure (`None` when
    /// [`IncrementalChase::complete`]).
    pub fn exhausted(&self) -> Option<BudgetExhausted> {
        self.exhausted
    }

    /// Total closure rounds run over the lifetime of this instance.
    pub fn rounds_total(&self) -> u64 {
        self.rounds_total
    }

    /// Lifetime total of facts removed by DRed over-deletion cascades,
    /// beyond the retracted base facts themselves (counts facts later
    /// re-derived too) — the cascade fan-out a metrics surface wants to
    /// watch.
    pub fn overdeleted_total(&self) -> u64 {
        self.overdeleted_total
    }

    /// Lifetime total of facts the re-derivation phase brought back
    /// after retractions.
    pub fn rederived_total(&self) -> u64 {
        self.rederived_total
    }

    /// Number of derived resident facts carrying a recorded derivation —
    /// the size of the provenance (derivation) index.
    pub fn provenance_len(&self) -> usize {
        self.provenance.len()
    }

    /// Inserts base facts and closes over them with semi-naive delta
    /// rounds (plus any delta still pending from an earlier exhausted
    /// mutation). Already-present facts are absorbed silently — they
    /// become base-supported in addition to whatever support they had.
    pub fn insert_with<S: EventSink>(
        &mut self,
        facts: &[Fact],
        voc: &mut Vocabulary,
        config: MaintainConfig,
        sink: &S,
    ) -> MaintainOutcome {
        let before = self.instance.len();
        for f in facts {
            if self.base_set.insert(f.clone()) {
                self.base.push(f.clone());
            }
            self.instance.insert(f.clone());
        }
        let mut outcome = self.close(voc, config, sink);
        outcome.new_facts = self.instance.len() - before;
        outcome
    }

    /// [`IncrementalChase::insert_with`] without telemetry.
    pub fn insert(
        &mut self,
        facts: &[Fact],
        voc: &mut Vocabulary,
        config: MaintainConfig,
    ) -> MaintainOutcome {
        self.insert_with(facts, voc, config, &NULL)
    }

    /// Retracts base facts by DRed: over-delete every fact whose
    /// recorded derivation transitively used a deleted fact, then
    /// re-derive from the survivors so facts with alternative
    /// derivations come back. Retracting a fact that is not currently a
    /// base fact is a no-op (in particular, purely-derived facts cannot
    /// be retracted — they would immediately be re-derived).
    pub fn retract_with<S: EventSink>(
        &mut self,
        facts: &[Fact],
        voc: &mut Vocabulary,
        config: MaintainConfig,
        sink: &S,
    ) -> MaintainOutcome {
        let mut retracted = 0usize;
        let mut deleted: FxHashSet<Fact> = FxHashSet::default();
        let mut work: Vec<Fact> = Vec::new();
        for f in facts {
            if self.base_set.remove(f) {
                retracted += 1;
                // A retracted base fact survives as a derived fact if it
                // has a recorded derivation; otherwise it is a deletion
                // seed.
                if !self.provenance.contains_key(f) {
                    if deleted.insert(f.clone()) {
                        work.push(f.clone());
                    }
                }
            }
        }
        if retracted == 0 {
            return MaintainOutcome {
                new_facts: 0,
                retracted: 0,
                overdeleted: 0,
                rounds: 0,
                complete: self.complete,
                exhausted: self.exhausted,
                facts_total: self.instance.len(),
            };
        }
        self.base.retain(|f| self.base_set.contains(f));
        let seed_count = deleted.len();

        // Over-delete: reverse the stored premise edges once, then walk
        // the dependency cone of the seeds. A dependent loses its stored
        // derivation; if it is not base-supported it is deleted and
        // cascades.
        let mut rev: FxHashMap<Fact, Vec<Fact>> = FxHashMap::default();
        for (f, d) in &self.provenance {
            for p in &d.premises {
                rev.entry(p.clone()).or_default().push(f.clone());
            }
        }
        while let Some(x) = work.pop() {
            let Some(deps) = rev.get(&x) else { continue };
            for dep in deps.clone() {
                if self.provenance.remove(&dep).is_some() && !self.base_set.contains(&dep) {
                    if deleted.insert(dep.clone()) {
                        work.push(dep);
                    }
                }
            }
        }
        let overdeleted = deleted.len() - seed_count;

        // Rebuild the survivor instance (the store is append-only, so
        // deletion is reconstruction), preserving insertion order.
        let mut survivors = Instance::new();
        for f in self.instance.facts() {
            if !deleted.contains(f) {
                survivors.insert(f.clone());
            }
        }
        let rederive_from = survivors.len();
        self.instance = survivors;

        // Re-derive: every survivor is delta, so the first resumed round
        // re-enumerates all triggers; restricted admission skips the
        // still-witnessed ones and re-fires the ones whose witnesses
        // were over-deleted. This also subsumes any delta left pending
        // by an earlier exhausted mutation.
        self.delta_start = 0;
        let mut outcome = self.close(voc, config, sink);
        outcome.retracted = retracted;
        outcome.overdeleted = overdeleted;
        outcome.new_facts = self.instance.len() - rederive_from;
        self.overdeleted_total += overdeleted as u64;
        self.rederived_total += outcome.new_facts as u64;
        outcome
    }

    /// [`IncrementalChase::retract_with`] without telemetry.
    pub fn retract(
        &mut self,
        facts: &[Fact],
        voc: &mut Vocabulary,
        config: MaintainConfig,
    ) -> MaintainOutcome {
        self.retract_with(facts, voc, config, &NULL)
    }

    /// Runs provenance-recording closure rounds over the pending delta
    /// until fixpoint or budget.
    fn close<S: EventSink>(
        &mut self,
        voc: &mut Vocabulary,
        config: MaintainConfig,
        sink: &S,
    ) -> MaintainOutcome {
        let mut rounds = 0u32;
        let mut derivs: Vec<(Fact, Derivation)> = Vec::new();
        if self.delta_start == self.instance.len() {
            // Nothing pending (e.g. every inserted fact was already
            // resident): the completeness state is unchanged.
            return MaintainOutcome {
                new_facts: 0,
                retracted: 0,
                overdeleted: 0,
                rounds,
                complete: self.complete,
                exhausted: self.exhausted,
                facts_total: self.instance.len(),
            };
        }
        let instance = std::mem::replace(&mut self.instance, Instance::new());
        let delta = self.delta_start..instance.len();
        let mut stepper = ChaseStepper::resume(
            instance,
            &self.theory,
            ChaseVariant::Restricted,
            ChaseStrategy::SemiNaive,
            sink,
            delta,
        );
        if let Some(p) = &self.priors {
            stepper = stepper.with_priors(p.clone());
        }
        let round_base = self.rounds_total;
        loop {
            if stepper.pending_delta().is_empty() {
                self.complete = true;
                self.exhausted = None;
                break;
            }
            if rounds >= config.max_rounds {
                self.complete = false;
                self.exhausted = Some(BudgetExhausted::Rounds);
                break;
            }
            let before = stepper.instance.len();
            stepper.step_traced(voc, &mut derivs);
            rounds += 1;
            if stepper.instance.len() == before {
                self.complete = true;
                self.exhausted = None;
                break;
            }
            if stepper.instance.len() > config.max_facts {
                self.complete = false;
                self.exhausted = Some(BudgetExhausted::Facts);
                break;
            }
        }
        self.delta_start = if self.complete {
            stepper.instance.len()
        } else {
            stepper.pending_delta().start
        };
        self.rounds_total += u64::from(rounds);
        self.instance = stepper.into_instance();
        for (f, mut d) in derivs {
            // Stepper-local round numbers are rebased onto the lifetime
            // counter so provenance stays monotone across mutations.
            d.round = u32::try_from(round_base).unwrap_or(u32::MAX).saturating_add(d.round);
            self.provenance.insert(f, d);
        }
        MaintainOutcome {
            new_facts: 0,
            retracted: 0,
            overdeleted: 0,
            rounds,
            complete: self.complete,
            exhausted: self.exhausted,
            facts_total: self.instance.len(),
        }
    }

    /// Extracts the derivation tree of a resident fact (`None` if the
    /// fact is not resident). Base facts are leaves.
    pub fn explain(&self, fact: &Fact) -> Option<DerivationTree> {
        self.traced_view().explain(fact)
    }

    /// A [`TracedChase`] view of the resident state (clones instance and
    /// provenance — meant for debugging commands, not hot paths).
    pub fn traced_view(&self) -> TracedChase {
        TracedChase {
            instance: self.instance.clone(),
            provenance: self.provenance.clone(),
            rounds: u32::try_from(self.rounds_total).unwrap_or(u32::MAX),
            fixpoint: self.complete,
        }
    }

    /// Debug invariant: every resident fact is base-supported or carries
    /// a recorded derivation whose premises are resident. Returns the
    /// first violating fact, if any.
    pub fn check_support(&self) -> Option<&Fact> {
        self.instance.facts().iter().find(|f| {
            if self.base_set.contains(f) {
                return false;
            }
            match self.provenance.get(f) {
                Some(d) => !d.premises.iter().all(|p| self.instance.contains_ground(p.pred, &p.args)),
                None => true,
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{chase, ChaseConfig};
    use bddfc_core::hom;
    use bddfc_core::parse_program;

    fn cfg() -> MaintainConfig {
        MaintainConfig::default()
    }

    /// Datalog closures are confluent, so incremental and scratch
    /// instances must be *equal as sets*, not merely query-equivalent.
    #[test]
    fn datalog_insert_batches_match_scratch_chase() {
        let prog = parse_program(
            "E(X,Y), E(Y,Z) -> E(X,Z).
             E(a,b). E(b,c). E(c,d). E(d,e).",
        )
        .unwrap();
        let mut voc = prog.voc.clone();
        let mut inc = IncrementalChase::new(&prog.theory);
        let facts: Vec<_> = prog.instance.facts().to_vec();
        let (first, rest) = facts.split_at(2);
        let out = inc.insert(first, &mut voc, cfg());
        assert!(out.complete);
        let out = inc.insert(rest, &mut voc, cfg());
        assert!(out.complete);
        let scratch =
            chase(&prog.instance, &prog.theory, &mut prog.voc.clone(), ChaseConfig::default());
        assert!(scratch.is_fixpoint());
        assert_eq!(*inc.instance(), scratch.instance);
        assert!(inc.check_support().is_none());
    }

    #[test]
    fn datalog_retract_matches_scratch_chase_of_surviving_base() {
        let prog = parse_program(
            "E(X,Y), E(Y,Z) -> E(X,Z).
             E(a,b). E(b,c). E(c,d). E(a,d).",
        )
        .unwrap();
        let mut voc = prog.voc.clone();
        let mut inc = IncrementalChase::new(&prog.theory);
        inc.insert(&prog.instance.facts().to_vec(), &mut voc, cfg());
        // Retract E(b,c): E(a,c), E(b,d) and E(a,d)-via-chain lose their
        // derivations; E(a,d) survives (still base), the others go.
        let retract = vec![prog.instance.facts()[1].clone()];
        let out = inc.retract(&retract, &mut voc, cfg());
        assert!(out.complete);
        assert_eq!(out.retracted, 1);
        assert!(out.overdeleted >= 2, "E(a,c) and E(b,d) must be over-deleted");
        let mut base = Instance::new();
        for f in inc.base() {
            base.insert(f.clone());
        }
        let scratch = chase(&base, &prog.theory, &mut prog.voc.clone(), ChaseConfig::default());
        assert_eq!(*inc.instance(), scratch.instance);
        assert!(inc.check_support().is_none());
    }

    #[test]
    fn retract_keeps_facts_with_alternative_derivations() {
        // E(a,c) is both base and derivable from E(a,b), E(b,c):
        // retracting it from the base must keep it resident.
        let prog = parse_program(
            "E(X,Y), E(Y,Z) -> E(X,Z).
             E(a,b). E(b,c). E(a,c).",
        )
        .unwrap();
        let mut voc = prog.voc.clone();
        let mut inc = IncrementalChase::new(&prog.theory);
        inc.insert(&prog.instance.facts().to_vec(), &mut voc, cfg());
        let eac = prog.instance.facts()[2].clone();
        let out = inc.retract(&[eac.clone()], &mut voc, cfg());
        assert_eq!(out.retracted, 1);
        assert!(inc.instance().contains_ground(eac.pred, &eac.args));
        assert!(inc.check_support().is_none());
        // Now cut its only derivation: it must disappear with it.
        let eab = prog.instance.facts()[0].clone();
        inc.retract(&[eab.clone()], &mut voc, cfg());
        assert!(!inc.instance().contains_ground(eac.pred, &eac.args));
        assert!(!inc.instance().contains_ground(eab.pred, &eab.args));
        assert!(inc.check_support().is_none());
    }

    #[test]
    fn existential_retract_cascades_through_nulls() {
        let prog = parse_program(
            "P(X) -> exists Z . E(X,Z).
             E(X,Y) -> U(Y).
             P(a). P(b).",
        )
        .unwrap();
        let mut voc = prog.voc.clone();
        let mut inc = IncrementalChase::new(&prog.theory);
        let out = inc.insert(&prog.instance.facts().to_vec(), &mut voc, cfg());
        assert!(out.complete);
        // P(a), P(b), E(a,n), E(b,n'), U(n), U(n').
        assert_eq!(inc.instance().len(), 6);
        let pa = prog.instance.facts()[0].clone();
        let out = inc.retract(&[pa], &mut voc, cfg());
        assert!(out.complete);
        // P(a)'s null chain (E(a,n), U(n)) must go with it.
        assert_eq!(out.overdeleted, 2);
        assert_eq!(inc.instance().len(), 3);
        assert!(inc.check_support().is_none());
        // Lifetime counters track the cascade, and the provenance index
        // reflects the surviving derived facts.
        assert_eq!(inc.overdeleted_total(), 2);
        assert_eq!(inc.rederived_total(), 0);
        assert_eq!(inc.provenance_len(), 2, "E(b,n') and U(n') stay derived");
    }

    #[test]
    fn lifetime_counters_accumulate_across_retractions() {
        let prog = parse_program(
            "E(X,Y), E(Y,Z) -> E(X,Z).
             E(a,b). E(b,c). E(a,c).",
        )
        .unwrap();
        let mut voc = prog.voc.clone();
        let mut inc = IncrementalChase::new(&prog.theory);
        inc.insert(&prog.instance.facts().to_vec(), &mut voc, cfg());
        // Retracting base E(a,c) leaves it derivable: the cascade
        // deletes nothing, but re-derivation brings back anything the
        // over-deletion took (here the rebuilt E(a,c) support).
        let eac = prog.instance.facts()[2].clone();
        inc.retract(&[eac], &mut voc, cfg());
        let after_first = (inc.overdeleted_total(), inc.rederived_total());
        let eab = prog.instance.facts()[0].clone();
        inc.retract(&[eab], &mut voc, cfg());
        assert!(inc.overdeleted_total() >= after_first.0);
        assert!(inc.rederived_total() >= after_first.1);
        assert_eq!(inc.provenance_len(), 0, "no derived facts survive");
    }

    #[test]
    fn insert_into_fixpoint_runs_only_delta_rounds() {
        // A chased 16-node chain; appending one edge at the end closes
        // in 2 rounds (one deriving, one observing fixpoint), far fewer
        // than the from-scratch closure.
        let mut src = String::from("E(X,Y), E(Y,Z) -> E(X,Z).\n");
        for i in 0..16 {
            src.push_str(&format!("E(v{i},v{}).\n", i + 1));
        }
        let prog = parse_program(&src).unwrap();
        let mut voc = prog.voc.clone();
        let mut inc = IncrementalChase::new(&prog.theory);
        let initial = inc.insert(&prog.instance.facts().to_vec(), &mut voc, cfg());
        assert!(initial.complete);
        assert!(initial.rounds >= 4, "closing a 16-chain takes several rounds");
        let e = voc.pred("E", 2);
        let v16 = voc.constant("v16");
        let v17 = voc.constant("v17");
        let out = inc.insert(&[Fact::new(e, vec![v16, v17])], &mut voc, cfg());
        assert!(out.complete);
        assert_eq!(out.rounds, 2, "delta maintenance must not re-run applied rounds");
        // All transitive pairs ending at v17 appeared in one round.
        assert_eq!(out.new_facts, 17);
        assert!(inc.check_support().is_none());
    }

    #[test]
    fn exhausted_insert_resumes_pending_delta_on_next_mutation() {
        let prog = parse_program(
            "E(X,Y) -> exists Z . E(Y,Z).
             E(a,b).",
        )
        .unwrap();
        let mut voc = prog.voc.clone();
        let mut inc = IncrementalChase::new(&prog.theory);
        let tight = MaintainConfig { max_rounds: 2, ..MaintainConfig::default() };
        let out = inc.insert(&prog.instance.facts().to_vec(), &mut voc, tight);
        assert!(!out.complete);
        assert_eq!(out.exhausted, Some(BudgetExhausted::Rounds));
        let len_after = inc.instance().len();
        // An unrelated insert must pick the pending delta back up: two
        // more rounds of the diverging chain get appended.
        let u = voc.pred("U", 1);
        let c = voc.constant("c");
        let out = inc.insert(&[Fact::new(u, vec![c])], &mut voc, tight);
        assert!(!out.complete);
        assert!(inc.instance().len() > len_after + 1);
        assert!(inc.check_support().is_none());
    }

    #[test]
    fn resident_true_answers_are_certain_even_when_incomplete() {
        // Every resident fact has a derivation tree over the base, so a
        // witnessed query is entailed no matter how the closure was cut
        // short.
        let prog = parse_program(
            "E(X,Y) -> exists Z . E(Y,Z).
             E(a,b).
             ?- E(X1,X2), E(X2,X3), E(X3,X4).",
        )
        .unwrap();
        let mut voc = prog.voc.clone();
        let mut inc = IncrementalChase::new(&prog.theory);
        let tight = MaintainConfig { max_rounds: 3, ..MaintainConfig::default() };
        let out = inc.insert(&prog.instance.facts().to_vec(), &mut voc, tight);
        assert!(!out.complete);
        let q = bddfc_core::Ucq::single(prog.queries[0].clone());
        assert!(hom::satisfies_ucq(inc.instance(), &q));
        let scratch = crate::answers::certain_ucq(
            &prog.instance,
            &prog.theory,
            &mut prog.voc.clone(),
            &q,
            ChaseConfig::default(),
        );
        assert!(scratch.is_true());
    }

    #[test]
    fn explain_builds_a_tree_over_the_current_base() {
        let prog = parse_program(
            "E(X,Y), E(Y,Z) -> E(X,Z).
             E(a,b). E(b,c). E(c,d).",
        )
        .unwrap();
        let mut voc = prog.voc.clone();
        let mut inc = IncrementalChase::new(&prog.theory);
        inc.insert(&prog.instance.facts().to_vec(), &mut voc, cfg());
        let e = voc.pred("E", 2);
        let a = voc.constant("a");
        let d = voc.constant("d");
        let tree = inc.explain(&Fact::new(e, vec![a, d])).expect("E(a,d) is derived");
        assert!(tree.height() >= 1);
        assert!(inc.explain(&Fact::new(e, vec![d, a])).is_none());
    }
}
