//! Semi-naive saturation under the datalog rules of a theory.
//!
//! The finite-model pipeline of Section 3 chases the quotient `Mη(S̄)`
//! with the full theory but — by Lemma 5 — only the datalog rules ever
//! fire. This module provides the saturation step directly: it applies
//! *only* the datalog rules to a fixpoint, which always terminates (no new
//! elements are ever created), using semi-naive evaluation (every derived
//! fact must use at least one fact from the previous delta).

use bddfc_core::fxhash::FxHashSet;
use bddfc_core::join::{self, JoinMode};
use bddfc_core::obs::{Event, EventSink, SpanTimer, NULL};
use bddfc_core::par;
use bddfc_core::{hom, Binding, ConstId, Fact, Instance, PredId, Rule, Term, Theory};
use std::ops::{ControlFlow, Range};

/// The result of a datalog saturation.
#[derive(Clone, Debug)]
pub struct SaturationResult {
    /// The saturated instance (a model of the datalog rules).
    pub instance: Instance,
    /// Number of semi-naive rounds performed.
    pub rounds: u32,
    /// Number of facts added on top of the input.
    pub derived: usize,
    /// Completed body-homomorphism enumerations per round (the work
    /// metric semi-naive evaluation reduces; see [`crate::ChaseStats`]).
    pub body_matches_per_round: Vec<u64>,
}

impl SaturationResult {
    /// Total body matches across all rounds.
    pub fn total_body_matches(&self) -> u64 {
        self.body_matches_per_round.iter().sum()
    }
}

/// Grounds the head atoms of a datalog rule under a total body binding.
fn ground_head<'a>(rule: &'a Rule, binding: &Binding) -> impl Iterator<Item = Fact> + 'a {
    let binding = binding.clone();
    rule.head.iter().map(move |atom| {
        atom.apply(&|v| binding.get(&v).map(|&c| Term::Const(c)))
            .to_fact()
            .expect("datalog head grounded by body binding")
    })
}

/// Evaluates one semi-naive work item — rule body atom `pin` bound to the
/// delta fact `dfact`, the join completed against the full instance. Pure
/// over `inst`, so items shard freely across threads; `seen` is only a
/// local dedup (the round merge re-dedups globally).
fn rule_item(
    inst: &Instance,
    rule: &Rule,
    pin: usize,
    dfact: &Fact,
    out: &mut Vec<Fact>,
    seen: &mut FxHashSet<Fact>,
    matches: &mut u64,
    scans: Option<&mut hom::ScanStats>,
) {
    let pinned = &rule.body[pin];
    // Bind the pinned atom against the delta fact.
    let mut binding = Binding::default();
    for (term, &c) in pinned.args.iter().zip(dfact.args.iter()) {
        match term {
            Term::Const(k) => {
                if *k != c {
                    return;
                }
            }
            Term::Var(v) => match binding.get(v) {
                Some(&b) if b != c => return,
                _ => {
                    binding.insert(*v, c);
                }
            },
        }
    }
    // Match the remaining atoms in the full instance.
    let rest: Vec<_> = rule
        .body
        .iter()
        .enumerate()
        .filter(|(i, _)| *i != pin)
        .map(|(_, a)| a.clone())
        .collect();
    let mut visit = |b: &Binding| {
        *matches += 1;
        for fact in ground_head(rule, b) {
            if !inst.contains(&fact) && seen.insert(fact.clone()) {
                out.push(fact);
            }
        }
        ControlFlow::Continue(())
    };
    let _ = match scans {
        Some(s) => hom::for_each_hom_scanned(inst, &rest, &binding, s, &mut visit),
        None => hom::for_each_hom(inst, &rest, &binding, &mut visit),
    };
}

/// Evaluates one rule naively: enumerates *all* body homomorphisms over
/// the full instance, ignoring the delta. Differential-testing oracle for
/// [`rule_item`].
fn rule_round_naive(
    inst: &Instance,
    rule: &Rule,
    out: &mut Vec<Fact>,
    seen: &mut FxHashSet<Fact>,
    matches: &mut u64,
    scans: Option<&mut hom::ScanStats>,
) {
    let mut visit = |b: &Binding| {
        *matches += 1;
        for fact in ground_head(rule, b) {
            if !inst.contains(&fact) && seen.insert(fact.clone()) {
                out.push(fact);
            }
        }
        ControlFlow::Continue(())
    };
    let _ = match scans {
        Some(s) => {
            hom::for_each_hom_scanned(inst, &rule.body, &Binding::default(), s, &mut visit)
        }
        None => hom::for_each_hom(inst, &rule.body, &Binding::default(), &mut visit),
    };
}

/// Evaluates one rule with the batch join kernel — optionally pinned to a
/// delta tail segment — and grounds its head once per output row, reading
/// head arguments straight out of the batch's columns instead of
/// materializing per-row bindings. The batch-engine counterpart of
/// [`rule_item`] / [`rule_round_naive`].
fn batch_rule(
    inst: &Instance,
    rule: &Rule,
    pinned: Option<(usize, Range<usize>)>,
    out: &mut Vec<Fact>,
    seen: &mut FxHashSet<Fact>,
    matches: &mut u64,
    joins: Option<&mut join::JoinStats>,
) {
    let batch = join::eval_body(inst.columnar(), &rule.body, pinned, joins);
    if batch.rows() == 0 {
        return;
    }
    *matches += batch.rows() as u64;
    /// Where one head-atom argument comes from, resolved once per call.
    enum Src {
        Const(ConstId),
        Col(usize),
    }
    let heads: Vec<(PredId, Vec<Src>)> = rule
        .head
        .iter()
        .map(|atom| {
            let srcs = atom
                .args
                .iter()
                .map(|t| match t {
                    Term::Const(c) => Src::Const(*c),
                    Term::Var(v) => Src::Col(
                        batch.col_of(*v).expect("datalog head variable bound by body"),
                    ),
                })
                .collect();
            (atom.pred, srcs)
        })
        .collect();
    for row in 0..batch.rows() {
        for (pred, srcs) in &heads {
            let args: Vec<ConstId> = srcs
                .iter()
                .map(|s| match s {
                    Src::Const(c) => *c,
                    Src::Col(i) => batch.get(row, *i),
                })
                .collect();
            let fact = Fact::new(*pred, args);
            if !inst.contains(&fact) && seen.insert(fact.clone()) {
                out.push(fact);
            }
        }
    }
}

fn saturate_impl<S: EventSink>(
    inst: &Instance,
    theory: &Theory,
    naive: bool,
    sink: &S,
) -> SaturationResult {
    // Resolved once, on the calling thread, before any parallel region —
    // thread-local join-mode overrides do not cross into `par` workers.
    let mode = join::join_mode();
    // Keep each datalog rule's index in the *theory* — the attribution
    // key shared with the chase's `chase`/`trigger` events.
    let datalog: Vec<(usize, &Rule)> =
        theory.rules.iter().enumerate().filter(|(_, r)| r.is_datalog()).collect();
    // Per-shard attribution (indexed by datalog position), merged
    // sequentially; only built when a recording sink is installed.
    struct ShardAttr {
        rule_matches: Vec<u64>,
        rule_ns: Vec<u64>,
        scans: hom::ScanStats,
        joins: join::JoinStats,
    }
    let new_attr = || {
        if S::ENABLED {
            Some(ShardAttr {
                rule_matches: vec![0; datalog.len()],
                rule_ns: vec![0; datalog.len()],
                scans: hom::ScanStats::default(),
                joins: join::JoinStats::default(),
            })
        } else {
            None
        }
    };
    let run_span = if S::ENABLED { sink.span_open("saturate", "run", 0, None) } else { 0 };
    let mut current = inst.clone();
    let mut delta = inst.clone();
    let mut rounds = 0;
    let mut derived = 0;
    let mut body_matches_per_round = Vec::new();
    loop {
        let timer = SpanTimer::start();
        let round_span = if S::ENABLED {
            sink.span_open(
                "saturate",
                "round",
                run_span,
                Some(("round", body_matches_per_round.len() as u64 + 1)),
            )
        } else {
            0
        };
        // Phase 1 (parallel): every shard derives candidate facts with a
        // shard-local dedup against the frozen `current`. Work items keep
        // the sequential (rule, pin, delta-fact) nesting order so the
        // merged stream is the one the sequential loop would build.
        let shard_out: Vec<(Vec<Fact>, u64, Option<ShardAttr>)> = match (naive, mode) {
            (true, JoinMode::Batch) => par::par_chunks(datalog.len(), |range| {
                let mut out = Vec::new();
                let mut seen = FxHashSet::default();
                let mut matches = 0u64;
                let mut attr = new_attr();
                for di in range {
                    let t = attr.is_some().then(SpanTimer::start);
                    let before = matches;
                    batch_rule(
                        &current,
                        datalog[di].1,
                        None,
                        &mut out,
                        &mut seen,
                        &mut matches,
                        attr.as_mut().map(|a| &mut a.joins),
                    );
                    if let Some(a) = attr.as_mut() {
                        a.rule_ns[di] += t.expect("timer set with attr").elapsed_ns();
                        a.rule_matches[di] += matches - before;
                    }
                }
                (out, matches, attr)
            }),
            (true, JoinMode::Tuple) => par::par_chunks(datalog.len(), |range| {
                let mut out = Vec::new();
                let mut seen = FxHashSet::default();
                let mut matches = 0u64;
                let mut attr = new_attr();
                for di in range {
                    match attr.as_mut() {
                        Some(a) => {
                            let t = SpanTimer::start();
                            let before = matches;
                            rule_round_naive(
                                &current,
                                datalog[di].1,
                                &mut out,
                                &mut seen,
                                &mut matches,
                                Some(&mut a.scans),
                            );
                            a.rule_ns[di] += t.elapsed_ns();
                            a.rule_matches[di] += matches - before;
                        }
                        None => rule_round_naive(
                            &current,
                            datalog[di].1,
                            &mut out,
                            &mut seen,
                            &mut matches,
                            None,
                        ),
                    }
                }
                (out, matches, attr)
            }),
            (false, JoinMode::Batch) => {
                // One work item per (rule, pinned atom): the pin's delta
                // facts are exactly the tail `delta_count` rows of its
                // relation in `current` (append-only segments; nothing
                // else is inserted between rounds).
                let mut work: Vec<(usize, usize, Range<usize>)> = Vec::new();
                for (di, (_, rule)) in datalog.iter().enumerate() {
                    for pin in 0..rule.body.len() {
                        let pred = rule.body[pin].pred;
                        let k = delta.facts_with_pred(pred).len();
                        if k == 0 {
                            continue;
                        }
                        let rows = current.columnar().rows(pred);
                        debug_assert!(k <= rows, "delta larger than its relation");
                        work.push((di, pin, rows - k..rows));
                    }
                }
                par::par_chunks(work.len(), |range| {
                    let mut out = Vec::new();
                    let mut seen = FxHashSet::default();
                    let mut matches = 0u64;
                    let mut attr = new_attr();
                    for (di, pin, seg) in &work[range] {
                        let t = attr.is_some().then(SpanTimer::start);
                        let before = matches;
                        batch_rule(
                            &current,
                            datalog[*di].1,
                            Some((*pin, seg.clone())),
                            &mut out,
                            &mut seen,
                            &mut matches,
                            attr.as_mut().map(|a| &mut a.joins),
                        );
                        if let Some(a) = attr.as_mut() {
                            a.rule_ns[*di] += t.expect("timer set with attr").elapsed_ns();
                            a.rule_matches[*di] += matches - before;
                        }
                    }
                    (out, matches, attr)
                })
            }
            (false, JoinMode::Tuple) => {
                let mut work: Vec<(usize, usize, &Fact)> = Vec::new();
                for (di, (_, rule)) in datalog.iter().enumerate() {
                    for pin in 0..rule.body.len() {
                        for &didx in delta.facts_with_pred(rule.body[pin].pred) {
                            work.push((di, pin, delta.fact(didx)));
                        }
                    }
                }
                par::par_chunks(work.len(), |range| {
                    let mut out = Vec::new();
                    let mut seen = FxHashSet::default();
                    let mut matches = 0u64;
                    let mut attr = new_attr();
                    for &(di, pin, dfact) in &work[range] {
                        match attr.as_mut() {
                            Some(a) => {
                                let t = SpanTimer::start();
                                let before = matches;
                                rule_item(
                                    &current,
                                    datalog[di].1,
                                    pin,
                                    dfact,
                                    &mut out,
                                    &mut seen,
                                    &mut matches,
                                    Some(&mut a.scans),
                                );
                                a.rule_ns[di] += t.elapsed_ns();
                                a.rule_matches[di] += matches - before;
                            }
                            None => rule_item(
                                &current,
                                datalog[di].1,
                                pin,
                                dfact,
                                &mut out,
                                &mut seen,
                                &mut matches,
                                None,
                            ),
                        }
                    }
                    (out, matches, attr)
                })
            }
        };
        // Phase 2 (sequential): merge shards in input order with a global
        // first-occurrence dedup.
        let mut new_facts = Vec::new();
        let mut seen: FxHashSet<Fact> = FxHashSet::default();
        let mut matches = 0u64;
        let mut merged_attr = new_attr();
        for (shard, m, attr) in shard_out {
            matches += m;
            if let (Some(total), Some(a)) = (merged_attr.as_mut(), attr) {
                for (di, (&rm, &ns)) in a.rule_matches.iter().zip(&a.rule_ns).enumerate() {
                    total.rule_matches[di] += rm;
                    total.rule_ns[di] += ns;
                }
                total.scans.merge(&a.scans);
                total.joins.merge(&a.joins);
            }
            for fact in shard {
                if seen.insert(fact.clone()) {
                    new_facts.push(fact);
                }
            }
        }
        body_matches_per_round.push(matches);
        let fixpoint = new_facts.is_empty();
        let mut round_derived = 0u64;
        if !fixpoint {
            rounds += 1;
            let mut next_delta = Instance::new();
            for fact in new_facts {
                if current.insert(fact.clone()) {
                    derived += 1;
                    round_derived += 1;
                    next_delta.insert(fact);
                }
            }
            delta = next_delta;
        }
        if S::ENABLED {
            if let Some(a) = merged_attr {
                for (di, &(theory_idx, _)) in datalog.iter().enumerate() {
                    // Skip rules that never completed a match this round;
                    // the skip decision only reads deterministic fields.
                    if a.rule_matches[di] == 0 {
                        continue;
                    }
                    sink.record(Event {
                        engine: "saturate",
                        name: "rule",
                        parent: round_span,
                        key: Some(("rule", theory_idx as u64)),
                        fields: &[("body_matches", a.rule_matches[di])],
                        gauges: &[("wall_ns", a.rule_ns[di])],
                    });
                }
                for (pred, scans, candidates) in a.scans.sorted() {
                    sink.record(Event {
                        engine: "hom",
                        name: "scan",
                        parent: round_span,
                        key: Some(("pred", u64::from(pred.0))),
                        fields: &[("scans", scans), ("candidates", candidates)],
                        gauges: &[],
                    });
                }
                for (pred, c) in a.joins.sorted() {
                    if c.builds > 0 {
                        sink.record(Event {
                            engine: "join",
                            name: "build",
                            parent: round_span,
                            key: Some(("pred", u64::from(pred.0))),
                            fields: &[("builds", c.builds), ("rows", c.build_rows)],
                            gauges: &[("wall_ns", c.build_ns)],
                        });
                    }
                    if c.probes > 0 {
                        sink.record(Event {
                            engine: "join",
                            name: "probe",
                            parent: round_span,
                            key: Some(("pred", u64::from(pred.0))),
                            fields: &[
                                ("probes", c.probes),
                                ("rows", c.probe_rows),
                                ("matches", c.matches),
                            ],
                            gauges: &[("wall_ns", c.probe_ns)],
                        });
                    }
                }
            }
            sink.record(Event {
                engine: "saturate",
                name: "round",
                parent: round_span,
                key: None,
                fields: &[
                    ("round", body_matches_per_round.len() as u64),
                    ("body_matches", matches),
                    ("derived", round_derived),
                    ("facts_total", current.len() as u64),
                ],
                gauges: &[
                    ("wall_ns", timer.elapsed_ns()),
                    ("threads", par::num_threads() as u64),
                ],
            });
            sink.span_close(round_span);
        }
        if fixpoint {
            break;
        }
    }
    if S::ENABLED {
        sink.span_close(run_span);
    }
    SaturationResult { instance: current, rounds, derived, body_matches_per_round }
}

/// Saturates `inst` under the *datalog rules* of `theory` (existential
/// TGDs are ignored), using semi-naive evaluation. Always terminates.
pub fn saturate_datalog(inst: &Instance, theory: &Theory) -> SaturationResult {
    saturate_impl(inst, theory, false, &NULL)
}

/// Like [`saturate_datalog`], but reports one `saturate`/`round` event
/// per round into `sink` (fields: round, body_matches, derived,
/// facts_total; gauges: wall_ns, threads). The final, empty round that
/// certifies the fixpoint also emits an event, aligning the event count
/// with `body_matches_per_round`.
pub fn saturate_datalog_with<S: EventSink>(
    inst: &Instance,
    theory: &Theory,
    sink: &S,
) -> SaturationResult {
    saturate_impl(inst, theory, false, sink)
}

/// Naive-evaluation oracle for [`saturate_datalog`]: every round
/// re-enumerates all body homomorphisms over the full instance. Same
/// result, more work — kept for differential testing.
pub fn saturate_datalog_naive(inst: &Instance, theory: &Theory) -> SaturationResult {
    saturate_impl(inst, theory, true, &NULL)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bddfc_core::parse_program;
    use bddfc_core::satisfaction::satisfies_theory;

    #[test]
    fn transitive_closure_of_chain() {
        let prog = parse_program(
            "E(X,Y), E(Y,Z) -> E(X,Z).
             E(a1,a2). E(a2,a3). E(a3,a4). E(a4,a5).",
        )
        .unwrap();
        let res = saturate_datalog(&prog.instance, &prog.theory);
        // TC of a 4-edge chain has C(5,2) = 10 pairs.
        assert_eq!(res.instance.len(), 10);
        assert_eq!(res.derived, 6);
        assert!(satisfies_theory(&res.instance, &prog.theory));
    }

    #[test]
    fn tgds_are_ignored() {
        let prog = parse_program(
            "E(X,Y) -> exists Z . E(Y,Z).
             E(X,Y), E(Y,Z) -> E(X,Z).
             E(a,b). E(b,c).",
        )
        .unwrap();
        let res = saturate_datalog(&prog.instance, &prog.theory);
        assert_eq!(res.instance.len(), 3); // only E(a,c) added
        assert_eq!(res.instance.domain_size(), 3); // no new elements ever
    }

    #[test]
    fn semi_naive_matches_naive_on_cycle() {
        let prog = parse_program(
            "E(X,Y), E(Y,Z) -> E(X,Z).
             E(a,b). E(b,c). E(c,a).",
        )
        .unwrap();
        let res = saturate_datalog(&prog.instance, &prog.theory);
        // TC of a 3-cycle is the full relation on 3 elements: 9 facts.
        assert_eq!(res.instance.len(), 9);
    }

    #[test]
    fn rounds_are_logarithmic_for_chain() {
        // Semi-naive TC derives paths of length ≤ 2^k after k rounds... at
        // least 2 rounds are needed for a chain of 4 edges and derivations
        // stop when no new facts appear.
        let prog = parse_program(
            "E(X,Y), E(Y,Z) -> E(X,Z).
             E(a1,a2). E(a2,a3). E(a3,a4). E(a4,a5).",
        )
        .unwrap();
        let res = saturate_datalog(&prog.instance, &prog.theory);
        assert!(res.rounds >= 2 && res.rounds <= 3, "rounds = {}", res.rounds);
    }

    #[test]
    fn multiple_rules_interleave() {
        // Example 7's datalog rule plus a unary marker rule.
        let prog = parse_program(
            "E(X,Y), E(X2,Y) -> R(X,X2).
             R(X,X) -> Loop(X).
             E(a,c). E(b,c).",
        )
        .unwrap();
        let res = saturate_datalog(&prog.instance, &prog.theory);
        let r = prog.voc.find_pred("R").unwrap();
        let l = prog.voc.find_pred("Loop").unwrap();
        assert_eq!(res.instance.facts_with_pred(r).len(), 4); // aa, ab, ba, bb
        assert_eq!(res.instance.facts_with_pred(l).len(), 2); // a, b
    }

    #[test]
    fn constants_in_rule_bodies() {
        let prog = parse_program(
            "E(a,Y) -> Marked(Y).
             E(a,b). E(b,c).",
        )
        .unwrap();
        let res = saturate_datalog(&prog.instance, &prog.theory);
        let m = prog.voc.find_pred("Marked").unwrap();
        assert_eq!(res.instance.facts_with_pred(m).len(), 1);
    }

    #[test]
    fn empty_theory_is_noop() {
        let prog = parse_program("E(a,b).").unwrap();
        let res = saturate_datalog(&prog.instance, &Default::default());
        assert_eq!(res.instance.len(), 1);
        assert_eq!(res.rounds, 0);
    }

    #[test]
    fn sink_counters_mirror_saturation_result() {
        use bddfc_core::obs::Memory;
        let prog = parse_program(
            "E(X,Y), E(Y,Z) -> E(X,Z).
             E(a1,a2). E(a2,a3). E(a3,a4). E(a4,a5).",
        )
        .unwrap();
        let sink = Memory::new(64);
        let res = saturate_datalog_with(&prog.instance, &prog.theory, &sink);
        assert_eq!(res.instance, saturate_datalog(&prog.instance, &prog.theory).instance);
        assert_eq!(sink.counter("saturate", "round", "derived"), res.derived as u64);
        assert_eq!(
            sink.counter("saturate", "round", "body_matches"),
            res.total_body_matches()
        );
        let round_events = sink
            .event_counts()
            .into_iter()
            .find(|&((e, n), _)| (e, n) == ("saturate", "round"))
            .map(|(_, c)| c);
        assert_eq!(round_events, Some(res.body_matches_per_round.len() as u64));
        // Per-rule attribution (keyed by theory rule index) reconciles
        // with the round totals, and candidate scans are charged to E.
        assert_eq!(
            sink.counter("saturate", "rule", "body_matches"),
            res.total_body_matches()
        );
        // Enumeration telemetry depends on the join engine: the batch
        // kernel charges join probes, the tuple oracle hom scans.
        match join::join_mode() {
            JoinMode::Batch => assert!(sink.counter("join", "probe", "probes") > 0),
            JoinMode::Tuple => assert!(sink.counter("hom", "scan", "scans") > 0),
        }
        // One run span + one span per round, all closed.
        let spans = sink.spans();
        assert_eq!(spans.len(), 1 + res.body_matches_per_round.len());
        assert_eq!((spans[0].engine, spans[0].name), ("saturate", "run"));
        assert!(spans.iter().all(|s| s.is_closed()));
        assert!(spans[1..].iter().all(|s| s.parent == spans[0].id));
        // And explicitly under each pinned mode.
        let batch_sink = Memory::new(64);
        join::with_join_mode(JoinMode::Batch, || {
            saturate_datalog_with(&prog.instance, &prog.theory, &batch_sink)
        });
        assert!(batch_sink.counter("join", "probe", "matches") >= res.total_body_matches());
        let tuple_sink = Memory::new(64);
        join::with_join_mode(JoinMode::Tuple, || {
            saturate_datalog_with(&prog.instance, &prog.theory, &tuple_sink)
        });
        assert!(tuple_sink.counter("hom", "scan", "scans") > 0);
    }

    /// The batch kernel and the tuple oracle derive the same closure with
    /// the same per-round work counts, under both evaluation modes.
    #[test]
    fn batch_and_tuple_saturation_agree() {
        let prog = parse_program(
            "E(X,Y), E(Y,Z) -> E(X,Z).
             E(X,Y), E(X2,Y) -> R(X,X2).
             R(X,X) -> Loop(X).
             E(a,b). E(b,c). E(c,a). E(d,c).",
        )
        .unwrap();
        for naive in [false, true] {
            let run = |mode| {
                join::with_join_mode(mode, || {
                    if naive {
                        saturate_datalog_naive(&prog.instance, &prog.theory)
                    } else {
                        saturate_datalog(&prog.instance, &prog.theory)
                    }
                })
            };
            let tuple = run(JoinMode::Tuple);
            let batch = run(JoinMode::Batch);
            assert_eq!(tuple.instance, batch.instance, "naive={naive}");
            assert_eq!(tuple.derived, batch.derived, "naive={naive}");
            assert_eq!(tuple.rounds, batch.rounds, "naive={naive}");
            assert_eq!(
                tuple.body_matches_per_round, batch.body_matches_per_round,
                "naive={naive}"
            );
        }
    }

    #[test]
    fn naive_oracle_agrees_and_works_harder() {
        let edges: String = (1..=40).map(|i| format!("E(a{i},a{}). ", i + 1)).collect();
        let prog = parse_program(&format!("E(X,Y), E(Y,Z) -> E(X,Z). {edges}")).unwrap();
        let semi = saturate_datalog(&prog.instance, &prog.theory);
        let naive = saturate_datalog_naive(&prog.instance, &prog.theory);
        assert_eq!(semi.instance, naive.instance);
        assert_eq!(semi.derived, naive.derived);
        assert!(
            naive.total_body_matches() >= 2 * semi.total_body_matches(),
            "naive {} vs semi-naive {}",
            naive.total_body_matches(),
            semi.total_body_matches()
        );
    }
}
