//! Provenance-tracking chase: which rule, under which premises, derived
//! each fact.
//!
//! The BDD property is all about *derivation depth* (Section 1.1: a
//! theory is BDD iff every entailed query is witnessed within a bounded
//! number of chase steps). The plain engine records depths; this traced
//! variant additionally records, for every derived fact, the rule and
//! the premise facts of its first derivation, so a full derivation tree
//! (the object whose height the BDD definition bounds) can be extracted
//! and inspected.

use bddfc_core::satisfaction::{head_satisfied, restrict_binding};
use bddfc_core::{hom, Binding, Fact, Instance, Term, Theory, VarId, Vocabulary};
use bddfc_core::fxhash::FxHashMap;
use std::ops::ControlFlow;

/// Provenance of one derived fact.
#[derive(Clone, Debug)]
pub struct Derivation {
    /// Index of the rule that derived the fact.
    pub rule_idx: usize,
    /// The premise facts (the grounded rule body of the first
    /// derivation).
    pub premises: Vec<Fact>,
    /// The chase round at which the fact appeared (`0` = database).
    pub round: u32,
}

/// A chase run with provenance.
#[derive(Clone, Debug)]
pub struct TracedChase {
    /// The chased instance.
    pub instance: Instance,
    /// Provenance for every non-database fact.
    pub provenance: FxHashMap<Fact, Derivation>,
    /// Rounds completed.
    pub rounds: u32,
    /// Did the run reach a fixpoint?
    pub fixpoint: bool,
}

/// A derivation tree, rooted at a fact.
///
/// Chains of existential rules routinely produce derivations tens of
/// thousands of steps deep, so every operation on this type — including
/// `Clone` and `Drop` — is implemented iteratively with explicit
/// worklists; none of them recurses on tree depth.
#[derive(Debug)]
pub struct DerivationTree {
    /// The derived fact.
    pub fact: Fact,
    /// The rule used, if the fact was derived (`None` for database facts).
    pub rule_idx: Option<usize>,
    /// Subtrees for the premises.
    pub premises: Vec<DerivationTree>,
}

impl DerivationTree {
    /// Height of the tree: 0 for database facts. This is the quantity
    /// the BDD property bounds.
    pub fn height(&self) -> u32 {
        // The height is the maximum node depth, so a depth-annotated
        // traversal suffices — no post-order bookkeeping needed.
        let mut max = 0u32;
        let mut stack: Vec<(&DerivationTree, u32)> = vec![(self, 0)];
        while let Some((t, depth)) = stack.pop() {
            max = max.max(depth);
            for p in &t.premises {
                stack.push((p, depth + 1));
            }
        }
        max
    }

    /// Total number of rule applications in the tree.
    pub fn size(&self) -> usize {
        let mut n = 0usize;
        let mut stack: Vec<&DerivationTree> = vec![self];
        while let Some(t) = stack.pop() {
            n += usize::from(t.rule_idx.is_some());
            stack.extend(t.premises.iter());
        }
        n
    }

    /// Renders the tree, indented, in pre-order. Indentation saturates
    /// at 64 levels so the rendering of an n-deep chain stays O(n), not
    /// O(n²), in output size.
    pub fn display(&self, voc: &Vocabulary) -> String {
        const MAX_INDENT: usize = 64;
        let mut out = String::new();
        let mut stack: Vec<(&DerivationTree, usize)> = vec![(self, 0)];
        while let Some((t, indent)) = stack.pop() {
            out.push_str(&"  ".repeat(indent.min(MAX_INDENT)));
            out.push_str(&t.fact.display(voc).to_string());
            match t.rule_idx {
                Some(r) => out.push_str(&format!("   [rule #{r}]\n")),
                None => out.push_str("   [database]\n"),
            }
            // Reversed so the leftmost premise is rendered first.
            for p in t.premises.iter().rev() {
                stack.push((p, indent + 1));
            }
        }
        out
    }

    /// Like [`DerivationTree::display`], but names each rule by its
    /// pretty-printed head and source position instead of a bare index —
    /// `[rule #0 -> E(Y,Z) at 1:1]`. Rules built programmatically (no
    /// spans) omit the position; a rule index outside `theory` (a tree
    /// explained against the wrong theory) degrades to the bare form.
    pub fn display_with(&self, voc: &Vocabulary, theory: &Theory) -> String {
        const MAX_INDENT: usize = 64;
        let mut out = String::new();
        let mut stack: Vec<(&DerivationTree, usize)> = vec![(self, 0)];
        while let Some((t, indent)) = stack.pop() {
            out.push_str(&"  ".repeat(indent.min(MAX_INDENT)));
            out.push_str(&t.fact.display(voc).to_string());
            match t.rule_idx {
                Some(r) => match theory.rules.get(r) {
                    Some(rule) => {
                        let head = rule
                            .head
                            .iter()
                            .map(|a| a.display(voc).to_string())
                            .collect::<Vec<_>>()
                            .join(", ");
                        match rule.span() {
                            Some(span) => {
                                out.push_str(&format!("   [rule #{r} -> {head} at {span}]\n"));
                            }
                            None => out.push_str(&format!("   [rule #{r} -> {head}]\n")),
                        }
                    }
                    None => out.push_str(&format!("   [rule #{r}]\n")),
                },
                None => out.push_str("   [database]\n"),
            }
            for p in t.premises.iter().rev() {
                stack.push((p, indent + 1));
            }
        }
        out
    }
}

impl Clone for DerivationTree {
    fn clone(&self) -> Self {
        // Breadth-first flatten: each node records the contiguous index
        // range its children occupy, then clones assemble bottom-up.
        let mut nodes: Vec<&DerivationTree> = vec![self];
        let mut ranges: Vec<(usize, usize)> = Vec::new();
        let mut i = 0;
        while i < nodes.len() {
            let node = nodes[i];
            let start = nodes.len();
            nodes.extend(node.premises.iter());
            ranges.push((start, nodes.len()));
            i += 1;
        }
        let mut built: Vec<Option<DerivationTree>> = (0..nodes.len()).map(|_| None).collect();
        for idx in (0..nodes.len()).rev() {
            let (start, end) = ranges[idx];
            let premises = (start..end)
                .map(|c| built[c].take().expect("child built before parent"))
                .collect();
            built[idx] = Some(DerivationTree {
                fact: nodes[idx].fact.clone(),
                rule_idx: nodes[idx].rule_idx,
                premises,
            });
        }
        built[0].take().expect("root built last")
    }
}

impl Drop for DerivationTree {
    fn drop(&mut self) {
        // Detach the subtrees into a flat worklist so the compiler's
        // recursive drop glue only ever sees leaf nodes.
        let mut stack = std::mem::take(&mut self.premises);
        while let Some(mut t) = stack.pop() {
            stack.append(&mut t.premises);
        }
    }
}

/// Runs a restricted chase recording provenance; bounded by `max_rounds`.
pub fn traced_chase(
    db: &Instance,
    theory: &Theory,
    voc: &mut Vocabulary,
    max_rounds: u32,
) -> TracedChase {
    let mut inst = db.clone();
    let mut provenance: FxHashMap<Fact, Derivation> = FxHashMap::default();
    let mut rounds = 0;
    let mut fixpoint = false;
    while rounds < max_rounds {
        // Collect repairs with their grounded premises against the frozen
        // instance (simultaneous semantics, as in the plain engine).
        struct Repair {
            rule_idx: usize,
            key: Vec<bddfc_core::ConstId>,
            binding: Binding,
            premises: Vec<Fact>,
        }
        let mut repairs: Vec<Repair> = Vec::new();
        for (rule_idx, rule) in theory.rules.iter().enumerate() {
            let mut frontier: Vec<VarId> = rule.frontier().into_iter().collect();
            frontier.sort_unstable();
            let mut seen: bddfc_core::fxhash::FxHashSet<Vec<bddfc_core::ConstId>> =
                bddfc_core::fxhash::FxHashSet::default();
            let _ = hom::for_each_hom(&inst, &rule.body, &Binding::default(), |b| {
                let key: Vec<_> = frontier.iter().map(|v| b[v]).collect();
                if seen.contains(&key) {
                    return ControlFlow::Continue(());
                }
                seen.insert(key.clone());
                let restricted = restrict_binding(b, &frontier);
                if !head_satisfied(&inst, rule, &restricted) {
                    let premises = rule
                        .body
                        .iter()
                        .map(|a| {
                            a.apply(&|v| b.get(&v).map(|&c| Term::Const(c)))
                                .to_fact()
                                .expect("body grounded by homomorphism")
                        })
                        .collect();
                    repairs.push(Repair { rule_idx, key, binding: restricted, premises });
                }
                ControlFlow::Continue(())
            });
        }
        if repairs.is_empty() {
            fixpoint = true;
            break;
        }
        // Canonical repair order — the same (rule, frontier-key) order as
        // the plain engine, so fresh nulls get identical names.
        repairs.sort_by(|a, b| (a.rule_idx, &a.key).cmp(&(b.rule_idx, &b.key)));
        rounds += 1;
        for repair in repairs {
            let rule = &theory.rules[repair.rule_idx];
            let mut ext = repair.binding.clone();
            let mut ex: Vec<VarId> = rule.existential_vars().into_iter().collect();
            ex.sort_unstable();
            for v in ex {
                ext.insert(v, voc.fresh_null("n"));
            }
            for atom in &rule.head {
                let fact = atom
                    .apply(&|v| ext.get(&v).map(|&c| Term::Const(c)))
                    .to_fact()
                    .expect("head grounded");
                if inst.insert(fact.clone()) {
                    provenance.insert(
                        fact,
                        Derivation {
                            rule_idx: repair.rule_idx,
                            premises: repair.premises.clone(),
                            round: rounds,
                        },
                    );
                }
            }
        }
    }
    TracedChase { instance: inst, provenance, rounds, fixpoint }
}

impl TracedChase {
    /// Extracts the derivation tree of a fact (database facts are
    /// leaves). Returns `None` if the fact is not in the instance.
    ///
    /// Iterative on derivation depth (a chained existential rule makes
    /// derivations as deep as the run is long, far beyond what the call
    /// stack tolerates): a breadth-first pass flattens the provenance
    /// graph into an indexed node list, then the tree is assembled
    /// bottom-up. Facts shared between derivations are expanded once per
    /// occurrence — the result is a tree, exactly as the recursive
    /// definition reads.
    pub fn explain(&self, fact: &Fact) -> Option<DerivationTree> {
        if !self.instance.contains(fact) {
            return None;
        }
        let mut facts: Vec<Fact> = vec![fact.clone()];
        let mut ranges: Vec<(usize, usize, Option<usize>)> = Vec::new();
        let mut i = 0;
        while i < facts.len() {
            let (rule_idx, premises): (Option<usize>, &[Fact]) =
                match self.provenance.get(&facts[i]) {
                    None => (None, &[]),
                    Some(d) => (Some(d.rule_idx), &d.premises),
                };
            let start = facts.len();
            facts.extend(premises.iter().cloned());
            ranges.push((start, facts.len(), rule_idx));
            i += 1;
        }
        let mut built: Vec<Option<DerivationTree>> = (0..facts.len()).map(|_| None).collect();
        for idx in (0..facts.len()).rev() {
            let (start, end, rule_idx) = ranges[idx];
            let premises = (start..end)
                .map(|c| built[c].take().expect("child built before parent"))
                .collect();
            built[idx] = Some(DerivationTree { fact: facts[idx].clone(), rule_idx, premises });
        }
        Some(built[0].take().expect("root built last"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bddfc_core::parse_program;

    #[test]
    fn database_facts_have_height_zero() {
        let prog = parse_program("E(a,b).").unwrap();
        let mut voc = prog.voc.clone();
        let traced = traced_chase(&prog.instance, &Default::default(), &mut voc, 4);
        assert!(traced.fixpoint);
        let tree = traced.explain(prog.instance.facts().first().unwrap()).unwrap();
        assert_eq!(tree.height(), 0);
        assert_eq!(tree.size(), 0);
    }

    #[test]
    fn chain_derivations_have_linear_height() {
        let prog = parse_program("E(X,Y) -> exists Z . E(Y,Z). E(a,b).").unwrap();
        let mut voc = prog.voc.clone();
        let traced = traced_chase(&prog.instance, &prog.theory, &mut voc, 5);
        assert_eq!(traced.rounds, 5);
        // The deepest fact has a derivation of height 5.
        let max_height = traced
            .instance
            .facts()
            .iter()
            .map(|f| traced.explain(f).unwrap().height())
            .max()
            .unwrap();
        assert_eq!(max_height, 5);
    }

    #[test]
    fn transitive_closure_explanations() {
        let prog = parse_program(
            "E(X,Y), E(Y,Z) -> E(X,Z). E(a,b). E(b,c). E(c,d).",
        )
        .unwrap();
        let mut voc = prog.voc.clone();
        let traced = traced_chase(&prog.instance, &prog.theory, &mut voc, 8);
        assert!(traced.fixpoint);
        let e = voc.find_pred("E").unwrap();
        let a = voc.find_const("a").unwrap();
        let d = voc.find_const("d").unwrap();
        let ad = Fact::new(e, vec![a, d]);
        let tree = traced.explain(&ad).unwrap();
        assert!(tree.height() >= 2); // needs two compositions
        assert!(tree.display(&voc).contains("[rule #0]"));
        // The theory-aware rendering names the rule by head and span
        // (the rule starts at line 1, column 1 of the program text).
        let pretty = tree.display_with(&voc, &prog.theory);
        assert!(pretty.contains("[rule #0 -> E(X,Z) at 1:1]"), "{pretty}");
        assert!(pretty.contains("[database]"));
        assert_eq!(pretty.lines().count(), tree.display(&voc).lines().count());
        // All leaves are database facts.
        fn leaves_are_db(t: &DerivationTree) -> bool {
            if t.premises.is_empty() {
                t.rule_idx.is_none()
            } else {
                t.premises.iter().all(leaves_are_db)
            }
        }
        assert!(leaves_are_db(&tree));
    }

    #[test]
    fn traced_matches_untraced_instance() {
        let prog = parse_program(
            "E(X,Y) -> exists Z . E(Y,Z).
             E(X,Y), E(Y,Z) -> R(X,Z).
             E(a,b).",
        )
        .unwrap();
        let mut voc1 = prog.voc.clone();
        let traced = traced_chase(&prog.instance, &prog.theory, &mut voc1, 6);
        let mut voc2 = prog.voc.clone();
        let plain = crate::chase(
            &prog.instance,
            &prog.theory,
            &mut voc2,
            crate::ChaseConfig::rounds(6),
        );
        assert_eq!(traced.instance.len(), plain.instance.len());
        // Provenance round agrees with the plain engine's depth label.
        let depth = plain.depth_map();
        for (fact, deriv) in &traced.provenance {
            assert_eq!(depth[fact], deriv.round);
        }
    }

    #[test]
    fn hundred_thousand_deep_chain_does_not_overflow_the_stack() {
        // A hand-built provenance chain P(n_0) ⊢ P(n_1) ⊢ … ⊢ P(n_N):
        // running traced_chase for 100k rounds would dominate the test's
        // runtime, but the tree machinery must survive such depths either
        // way (the restricted chase on `E(X,Y) -> exists Z . E(Y,Z)`
        // produces exactly this shape, one round per level).
        const N: usize = 100_000;
        let mut voc = Vocabulary::new();
        let p = voc.pred("P", 1);
        let mut inst = Instance::new();
        let mut provenance: FxHashMap<Fact, Derivation> = FxHashMap::default();
        let mut prev: Option<Fact> = None;
        let mut deepest = None;
        for i in 0..=N {
            let fact = Fact::new(p, vec![voc.fresh_null("n")]);
            inst.insert(fact.clone());
            if let Some(prev) = prev.take() {
                provenance.insert(
                    fact.clone(),
                    Derivation { rule_idx: 0, premises: vec![prev], round: i as u32 },
                );
            }
            deepest = Some(fact.clone());
            prev = Some(fact);
        }
        let traced = TracedChase {
            instance: inst,
            provenance,
            rounds: N as u32,
            fixpoint: true,
        };
        let deepest = deepest.unwrap();
        // Construction, height, size, display, clone and drop all run on
        // a 100k-deep tree without recursing on depth.
        let tree = traced.explain(&deepest).unwrap();
        assert_eq!(tree.height(), N as u32);
        assert_eq!(tree.size(), N);
        let copy = tree.clone();
        assert_eq!(copy.height(), N as u32);
        let rendered = tree.display(&voc);
        assert_eq!(rendered.lines().count(), N + 1);
        assert!(rendered.ends_with("[database]\n"));
        drop(copy);
        drop(tree);
    }

    #[test]
    fn missing_fact_has_no_explanation() {
        let prog = parse_program("E(a,b).").unwrap();
        let mut voc = prog.voc.clone();
        let traced = traced_chase(&prog.instance, &Default::default(), &mut voc, 2);
        let e = voc.find_pred("E").unwrap();
        let b = voc.find_const("b").unwrap();
        assert!(traced.explain(&Fact::new(e, vec![b, b])).is_none());
    }
}
