//! Provenance-tracking chase: which rule, under which premises, derived
//! each fact.
//!
//! The BDD property is all about *derivation depth* (Section 1.1: a
//! theory is BDD iff every entailed query is witnessed within a bounded
//! number of chase steps). The plain engine records depths; this traced
//! variant additionally records, for every derived fact, the rule and
//! the premise facts of its first derivation, so a full derivation tree
//! (the object whose height the BDD definition bounds) can be extracted
//! and inspected.

use bddfc_core::satisfaction::{head_satisfied, restrict_binding};
use bddfc_core::{hom, Binding, Fact, Instance, Term, Theory, VarId, Vocabulary};
use bddfc_core::fxhash::FxHashMap;
use std::ops::ControlFlow;

/// Provenance of one derived fact.
#[derive(Clone, Debug)]
pub struct Derivation {
    /// Index of the rule that derived the fact.
    pub rule_idx: usize,
    /// The premise facts (the grounded rule body of the first
    /// derivation).
    pub premises: Vec<Fact>,
    /// The chase round at which the fact appeared (`0` = database).
    pub round: u32,
}

/// A chase run with provenance.
#[derive(Clone, Debug)]
pub struct TracedChase {
    /// The chased instance.
    pub instance: Instance,
    /// Provenance for every non-database fact.
    pub provenance: FxHashMap<Fact, Derivation>,
    /// Rounds completed.
    pub rounds: u32,
    /// Did the run reach a fixpoint?
    pub fixpoint: bool,
}

/// A derivation tree, rooted at a fact.
#[derive(Clone, Debug)]
pub struct DerivationTree {
    /// The derived fact.
    pub fact: Fact,
    /// The rule used, if the fact was derived (`None` for database facts).
    pub rule_idx: Option<usize>,
    /// Subtrees for the premises.
    pub premises: Vec<DerivationTree>,
}

impl DerivationTree {
    /// Height of the tree: 0 for database facts. This is the quantity
    /// the BDD property bounds.
    pub fn height(&self) -> u32 {
        self.premises
            .iter()
            .map(|p| p.height() + 1)
            .max()
            .unwrap_or(0)
    }

    /// Total number of rule applications in the tree.
    pub fn size(&self) -> usize {
        usize::from(self.rule_idx.is_some())
            + self.premises.iter().map(|p| p.size()).sum::<usize>()
    }

    /// Renders the tree, indented.
    pub fn display(&self, voc: &Vocabulary) -> String {
        fn go(t: &DerivationTree, voc: &Vocabulary, indent: usize, out: &mut String) {
            out.push_str(&"  ".repeat(indent));
            out.push_str(&t.fact.display(voc).to_string());
            match t.rule_idx {
                Some(r) => out.push_str(&format!("   [rule #{r}]\n")),
                None => out.push_str("   [database]\n"),
            }
            for p in &t.premises {
                go(p, voc, indent + 1, out);
            }
        }
        let mut s = String::new();
        go(self, voc, 0, &mut s);
        s
    }
}

/// Runs a restricted chase recording provenance; bounded by `max_rounds`.
pub fn traced_chase(
    db: &Instance,
    theory: &Theory,
    voc: &mut Vocabulary,
    max_rounds: u32,
) -> TracedChase {
    let mut inst = db.clone();
    let mut provenance: FxHashMap<Fact, Derivation> = FxHashMap::default();
    let mut rounds = 0;
    let mut fixpoint = false;
    while rounds < max_rounds {
        // Collect repairs with their grounded premises against the frozen
        // instance (simultaneous semantics, as in the plain engine).
        struct Repair {
            rule_idx: usize,
            key: Vec<bddfc_core::ConstId>,
            binding: Binding,
            premises: Vec<Fact>,
        }
        let mut repairs: Vec<Repair> = Vec::new();
        for (rule_idx, rule) in theory.rules.iter().enumerate() {
            let mut frontier: Vec<VarId> = rule.frontier().into_iter().collect();
            frontier.sort_unstable();
            let mut seen: bddfc_core::fxhash::FxHashSet<Vec<bddfc_core::ConstId>> =
                bddfc_core::fxhash::FxHashSet::default();
            let _ = hom::for_each_hom(&inst, &rule.body, &Binding::default(), |b| {
                let key: Vec<_> = frontier.iter().map(|v| b[v]).collect();
                if seen.contains(&key) {
                    return ControlFlow::Continue(());
                }
                seen.insert(key.clone());
                let restricted = restrict_binding(b, &frontier);
                if !head_satisfied(&inst, rule, &restricted) {
                    let premises = rule
                        .body
                        .iter()
                        .map(|a| {
                            a.apply(&|v| b.get(&v).map(|&c| Term::Const(c)))
                                .to_fact()
                                .expect("body grounded by homomorphism")
                        })
                        .collect();
                    repairs.push(Repair { rule_idx, key, binding: restricted, premises });
                }
                ControlFlow::Continue(())
            });
        }
        if repairs.is_empty() {
            fixpoint = true;
            break;
        }
        // Canonical repair order — the same (rule, frontier-key) order as
        // the plain engine, so fresh nulls get identical names.
        repairs.sort_by(|a, b| (a.rule_idx, &a.key).cmp(&(b.rule_idx, &b.key)));
        rounds += 1;
        for repair in repairs {
            let rule = &theory.rules[repair.rule_idx];
            let mut ext = repair.binding.clone();
            let mut ex: Vec<VarId> = rule.existential_vars().into_iter().collect();
            ex.sort_unstable();
            for v in ex {
                ext.insert(v, voc.fresh_null("n"));
            }
            for atom in &rule.head {
                let fact = atom
                    .apply(&|v| ext.get(&v).map(|&c| Term::Const(c)))
                    .to_fact()
                    .expect("head grounded");
                if inst.insert(fact.clone()) {
                    provenance.insert(
                        fact,
                        Derivation {
                            rule_idx: repair.rule_idx,
                            premises: repair.premises.clone(),
                            round: rounds,
                        },
                    );
                }
            }
        }
    }
    TracedChase { instance: inst, provenance, rounds, fixpoint }
}

impl TracedChase {
    /// Extracts the derivation tree of a fact (database facts are
    /// leaves). Returns `None` if the fact is not in the instance.
    pub fn explain(&self, fact: &Fact) -> Option<DerivationTree> {
        if !self.instance.contains(fact) {
            return None;
        }
        Some(self.explain_inner(fact))
    }

    fn explain_inner(&self, fact: &Fact) -> DerivationTree {
        match self.provenance.get(fact) {
            None => DerivationTree { fact: fact.clone(), rule_idx: None, premises: vec![] },
            Some(d) => DerivationTree {
                fact: fact.clone(),
                rule_idx: Some(d.rule_idx),
                premises: d.premises.iter().map(|p| self.explain_inner(p)).collect(),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bddfc_core::parse_program;

    #[test]
    fn database_facts_have_height_zero() {
        let prog = parse_program("E(a,b).").unwrap();
        let mut voc = prog.voc.clone();
        let traced = traced_chase(&prog.instance, &Default::default(), &mut voc, 4);
        assert!(traced.fixpoint);
        let tree = traced.explain(prog.instance.facts().first().unwrap()).unwrap();
        assert_eq!(tree.height(), 0);
        assert_eq!(tree.size(), 0);
    }

    #[test]
    fn chain_derivations_have_linear_height() {
        let prog = parse_program("E(X,Y) -> exists Z . E(Y,Z). E(a,b).").unwrap();
        let mut voc = prog.voc.clone();
        let traced = traced_chase(&prog.instance, &prog.theory, &mut voc, 5);
        assert_eq!(traced.rounds, 5);
        // The deepest fact has a derivation of height 5.
        let max_height = traced
            .instance
            .facts()
            .iter()
            .map(|f| traced.explain(f).unwrap().height())
            .max()
            .unwrap();
        assert_eq!(max_height, 5);
    }

    #[test]
    fn transitive_closure_explanations() {
        let prog = parse_program(
            "E(X,Y), E(Y,Z) -> E(X,Z). E(a,b). E(b,c). E(c,d).",
        )
        .unwrap();
        let mut voc = prog.voc.clone();
        let traced = traced_chase(&prog.instance, &prog.theory, &mut voc, 8);
        assert!(traced.fixpoint);
        let e = voc.find_pred("E").unwrap();
        let a = voc.find_const("a").unwrap();
        let d = voc.find_const("d").unwrap();
        let ad = Fact::new(e, vec![a, d]);
        let tree = traced.explain(&ad).unwrap();
        assert!(tree.height() >= 2); // needs two compositions
        assert!(tree.display(&voc).contains("[rule #0]"));
        // All leaves are database facts.
        fn leaves_are_db(t: &DerivationTree) -> bool {
            if t.premises.is_empty() {
                t.rule_idx.is_none()
            } else {
                t.premises.iter().all(leaves_are_db)
            }
        }
        assert!(leaves_are_db(&tree));
    }

    #[test]
    fn traced_matches_untraced_instance() {
        let prog = parse_program(
            "E(X,Y) -> exists Z . E(Y,Z).
             E(X,Y), E(Y,Z) -> R(X,Z).
             E(a,b).",
        )
        .unwrap();
        let mut voc1 = prog.voc.clone();
        let traced = traced_chase(&prog.instance, &prog.theory, &mut voc1, 6);
        let mut voc2 = prog.voc.clone();
        let plain = crate::chase(
            &prog.instance,
            &prog.theory,
            &mut voc2,
            crate::ChaseConfig::rounds(6),
        );
        assert_eq!(traced.instance.len(), plain.instance.len());
        // Provenance round agrees with the plain engine's depth label.
        for (fact, deriv) in &traced.provenance {
            assert_eq!(plain.depth[fact], deriv.round);
        }
    }

    #[test]
    fn missing_fact_has_no_explanation() {
        let prog = parse_program("E(a,b).").unwrap();
        let mut voc = prog.voc.clone();
        let traced = traced_chase(&prog.instance, &Default::default(), &mut voc, 2);
        let e = voc.find_pred("E").unwrap();
        let b = voc.find_const("b").unwrap();
        assert!(traced.explain(&Fact::new(e, vec![b, b])).is_none());
    }
}
