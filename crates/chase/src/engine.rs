//! The chase engine, implementing Section 1.1 of the paper.
//!
//! `Chase¹(D,T)` is one *simultaneous* round: for every rule `t` and every
//! frontier tuple `x̄` satisfying the body such that no witness for the
//! head exists (the **non-oblivious** condition — "new elements are only
//! created if needed"), a fresh labelled null `c_{t,x̄}` is created and the
//! head atom added. `Chaseⁱ⁺¹ = Chase¹(Chaseⁱ)` and `Chase = ⋃ᵢ Chaseⁱ`.
//!
//! The engine also provides the *oblivious* chase (fires every trigger
//! regardless of existing witnesses) for the comparisons in Section 1.1's
//! footnote and our benchmarks.

use bddfc_core::satisfaction::{head_satisfied, restrict_binding};
use bddfc_core::{hom, Binding, ConstId, Fact, Instance, Rule, Term, Theory, VarId, Vocabulary};
use rustc_hash::{FxHashMap, FxHashSet};
use std::ops::ControlFlow;

/// Which chase variant to run.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum ChaseVariant {
    /// The paper's chase: create a witness only when none exists.
    #[default]
    Restricted,
    /// Fire every trigger exactly once, regardless of existing witnesses.
    Oblivious,
}

/// Resource limits for a chase run. The chase of a Datalog∃ program need
/// not terminate (Example 1), so every entry point takes a budget.
#[derive(Clone, Copy, Debug)]
pub struct ChaseConfig {
    /// Maximum number of `Chase¹` rounds.
    pub max_rounds: u32,
    /// Maximum number of facts; the run stops after the round that exceeds it.
    pub max_facts: usize,
    /// Chase variant.
    pub variant: ChaseVariant,
}

impl Default for ChaseConfig {
    fn default() -> Self {
        ChaseConfig {
            max_rounds: 64,
            max_facts: 1_000_000,
            variant: ChaseVariant::Restricted,
        }
    }
}

impl ChaseConfig {
    /// A config bounded only by the number of rounds (`Chaseᵏ`).
    pub fn rounds(k: u32) -> Self {
        ChaseConfig { max_rounds: k, ..Default::default() }
    }

    /// Sets the variant.
    pub fn with_variant(mut self, v: ChaseVariant) -> Self {
        self.variant = v;
        self
    }

    /// Sets the fact budget.
    pub fn with_max_facts(mut self, n: usize) -> Self {
        self.max_facts = n;
        self
    }
}

/// Why a chase run stopped.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ChaseStatus {
    /// A fixpoint was reached: the result models the theory.
    Fixpoint,
    /// The round budget was exhausted before reaching a fixpoint.
    RoundBudget,
    /// The fact budget was exhausted before reaching a fixpoint.
    FactBudget,
}

/// The result of a chase run.
#[derive(Clone, Debug)]
pub struct ChaseResult {
    /// The (partially) chased instance.
    pub instance: Instance,
    /// Derivation depth of every fact: the round at which it appeared
    /// (`0` for the facts of `D`). This is the depth the BDD property
    /// (Section 1.1) quantifies over.
    pub depth: FxHashMap<Fact, u32>,
    /// Number of completed rounds.
    pub rounds: u32,
    /// Why the run stopped.
    pub status: ChaseStatus,
}

impl ChaseResult {
    /// Did the chase terminate (so `instance ⊨ T`)?
    pub fn is_fixpoint(&self) -> bool {
        self.status == ChaseStatus::Fixpoint
    }

    /// The maximal derivation depth of any fact.
    pub fn max_depth(&self) -> u32 {
        self.depth.values().copied().max().unwrap_or(0)
    }
}

/// One pending repair: a rule index plus the frontier binding to repair.
struct Repair {
    rule_idx: usize,
    binding: Binding,
}

/// Collects this round's repairs against the *frozen* instance, per the
/// simultaneous semantics of `Chase¹`.
fn collect_repairs(inst: &Instance, theory: &Theory, variant: ChaseVariant,
                   fired: &mut FxHashSet<(usize, Vec<ConstId>)>) -> Vec<Repair> {
    let mut out = Vec::new();
    for (rule_idx, rule) in theory.rules.iter().enumerate() {
        let mut frontier: Vec<VarId> = rule.frontier().into_iter().collect();
        frontier.sort_unstable();
        let mut seen: FxHashSet<Vec<ConstId>> = FxHashSet::default();
        let _ = hom::for_each_hom(inst, &rule.body, &Binding::default(), |b| {
            let key: Vec<ConstId> = frontier.iter().map(|v| b[v]).collect();
            if !seen.insert(key.clone()) {
                return ControlFlow::Continue(());
            }
            let restricted = restrict_binding(b, &frontier);
            match variant {
                ChaseVariant::Restricted => {
                    if !head_satisfied(inst, rule, &restricted) {
                        out.push(Repair { rule_idx, binding: restricted });
                    }
                }
                ChaseVariant::Oblivious => {
                    let trigger = (rule_idx, key);
                    if rule.is_datalog() {
                        // Datalog rules are idempotent; skip if head present.
                        if !head_satisfied(inst, rule, &restricted) {
                            out.push(Repair { rule_idx, binding: restricted });
                        }
                    } else if fired.insert(trigger) {
                        out.push(Repair { rule_idx, binding: restricted });
                    }
                }
            }
            ControlFlow::Continue(())
        });
    }
    out
}

/// Applies a repair: grounds the head, inventing one fresh null per
/// existential variable (the paper's `c_{t,x̄}`). Returns the new facts.
fn apply_repair(rule: &Rule, binding: &Binding, voc: &mut Vocabulary) -> Vec<Fact> {
    let mut ext = binding.clone();
    let mut ex: Vec<VarId> = rule.existential_vars().into_iter().collect();
    ex.sort_unstable();
    for v in ex {
        ext.insert(v, voc.fresh_null("n"));
    }
    rule.head
        .iter()
        .map(|atom| {
            let grounded = atom.apply(&|v| ext.get(&v).map(|&c| Term::Const(c)));
            grounded.to_fact().expect("head fully grounded by repair")
        })
        .collect()
}

/// Runs `Chase¹`: one simultaneous round. Returns the new facts, each at
/// the given depth. The instance is mutated in place.
pub fn chase_round(
    inst: &mut Instance,
    theory: &Theory,
    voc: &mut Vocabulary,
    variant: ChaseVariant,
    fired: &mut FxHashSet<(usize, Vec<ConstId>)>,
) -> Vec<Fact> {
    let repairs = collect_repairs(inst, theory, variant, fired);
    let mut new_facts = Vec::new();
    for repair in repairs {
        for fact in apply_repair(&theory.rules[repair.rule_idx], &repair.binding, voc) {
            if inst.insert(fact.clone()) {
                new_facts.push(fact);
            }
        }
    }
    new_facts
}

/// Runs the chase of `db` under `theory` within the given budget.
pub fn chase(
    db: &Instance,
    theory: &Theory,
    voc: &mut Vocabulary,
    config: ChaseConfig,
) -> ChaseResult {
    let mut inst = db.clone();
    let mut depth: FxHashMap<Fact, u32> = db.facts().iter().map(|f| (f.clone(), 0)).collect();
    let mut fired = FxHashSet::default();
    let mut rounds = 0;
    let status = loop {
        if rounds >= config.max_rounds {
            break ChaseStatus::RoundBudget;
        }
        let new_facts = chase_round(&mut inst, theory, voc, config.variant, &mut fired);
        if new_facts.is_empty() {
            break ChaseStatus::Fixpoint;
        }
        rounds += 1;
        for f in new_facts {
            depth.entry(f).or_insert(rounds);
        }
        if inst.len() > config.max_facts {
            break ChaseStatus::FactBudget;
        }
    };
    ChaseResult { instance: inst, depth, rounds, status }
}

/// Computes `Chaseᵏ(D, T)` exactly (stops early on fixpoint).
pub fn chase_k(
    db: &Instance,
    theory: &Theory,
    voc: &mut Vocabulary,
    k: u32,
) -> ChaseResult {
    chase(db, theory, voc, ChaseConfig { max_rounds: k, max_facts: usize::MAX, ..Default::default() })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bddfc_core::parse_program;

    #[test]
    fn chain_grows_one_per_round() {
        // Example 1's first rule alone: an infinite E-chain.
        let prog = parse_program("E(X,Y) -> exists Z . E(Y,Z). E(a,b).").unwrap();
        let mut voc = prog.voc.clone();
        let res = chase(&prog.instance, &prog.theory, &mut voc, ChaseConfig::rounds(10));
        assert_eq!(res.status, ChaseStatus::RoundBudget);
        assert_eq!(res.instance.len(), 11); // E(a,b) + 10 new edges
        assert_eq!(res.max_depth(), 10);
    }

    #[test]
    fn loop_reaches_fixpoint_immediately() {
        let prog = parse_program("E(X,Y) -> exists Z . E(Y,Z). E(a,a).").unwrap();
        let mut voc = prog.voc.clone();
        let res = chase(&prog.instance, &prog.theory, &mut voc, ChaseConfig::default());
        assert!(res.is_fixpoint());
        assert_eq!(res.instance.len(), 1);
        assert_eq!(res.rounds, 0);
    }

    #[test]
    fn restricted_reuses_existing_witness() {
        // b already has a successor, so no null is created for it.
        let prog = parse_program("E(X,Y) -> exists Z . E(Y,Z). E(a,b). E(b,a).").unwrap();
        let mut voc = prog.voc.clone();
        let res = chase(&prog.instance, &prog.theory, &mut voc, ChaseConfig::default());
        assert!(res.is_fixpoint());
        assert_eq!(res.instance.len(), 2);
    }

    #[test]
    fn oblivious_fires_every_trigger() {
        let prog = parse_program("E(X,Y) -> exists Z . E(Y,Z). E(a,b). E(b,a).").unwrap();
        let mut voc = prog.voc.clone();
        let res = chase(
            &prog.instance,
            &prog.theory,
            &mut voc,
            ChaseConfig::rounds(3).with_variant(ChaseVariant::Oblivious),
        );
        // Oblivious chase keeps inventing successors: strictly more facts.
        assert!(res.instance.len() > 2);
        assert_eq!(res.status, ChaseStatus::RoundBudget);
    }

    #[test]
    fn oblivious_does_not_refire_same_trigger() {
        // A single fact with a self-loop: one trigger, fired once.
        let prog = parse_program("E(X,X) -> exists Z . E(X,Z). E(a,a).").unwrap();
        let mut voc = prog.voc.clone();
        let res = chase(
            &prog.instance,
            &prog.theory,
            &mut voc,
            ChaseConfig::rounds(5).with_variant(ChaseVariant::Oblivious),
        );
        assert!(res.is_fixpoint());
        assert_eq!(res.instance.len(), 2); // E(a,a) + E(a,n0)
    }

    #[test]
    fn datalog_transitive_closure() {
        let prog = parse_program(
            "E(X,Y), E(Y,Z) -> E(X,Z). E(a,b). E(b,c). E(c,d).",
        )
        .unwrap();
        let mut voc = prog.voc.clone();
        let res = chase(&prog.instance, &prog.theory, &mut voc, ChaseConfig::default());
        assert!(res.is_fixpoint());
        assert_eq!(res.instance.len(), 6); // 3 base + ac, bd, ad
        assert_eq!(res.instance.domain_size(), 4); // no new elements
    }

    #[test]
    fn depth_tracks_rounds() {
        let prog = parse_program(
            "E(X,Y), E(Y,Z) -> E(X,Z). E(a,b). E(b,c). E(c,d). E(d,e).",
        )
        .unwrap();
        let mut voc = prog.voc.clone();
        let res = chase(&prog.instance, &prog.theory, &mut voc, ChaseConfig::default());
        assert!(res.is_fixpoint());
        // Paths of length 2 and 3 appear in round 1; length 4 in round 2
        // (ae = composition of two round-1 facts).
        assert_eq!(res.max_depth(), 2);
    }

    #[test]
    fn example1_triangle_is_fixpoint_for_first_rule_but_not_theory() {
        // The 3-cycle M' of Example 1 satisfies the successor rule but
        // triggers the triangle rule, and then U-chains diverge.
        let prog = parse_program(
            "E(X,Y) -> exists Z . E(Y,Z).
             E(X,Y), E(Y,Z), E(Z,X) -> exists T . U(X,T).
             U(X,Y) -> exists Z . U(Y,Z).
             E(a,b). E(b,c). E(c,a).",
        )
        .unwrap();
        let mut voc = prog.voc.clone();
        let res = chase(&prog.instance, &prog.theory, &mut voc, ChaseConfig::rounds(8));
        assert_eq!(res.status, ChaseStatus::RoundBudget); // diverges
        let u = voc.find_pred("U").unwrap();
        // Three U-chains (one per triangle vertex), each 8 atoms deep.
        assert_eq!(res.instance.facts_with_pred(u).len(), 3 * 8);
    }

    #[test]
    fn chase_k_matches_paper_notation() {
        let prog = parse_program("E(X,Y) -> exists Z . E(Y,Z). E(a,b).").unwrap();
        let mut voc = prog.voc.clone();
        let res = chase_k(&prog.instance, &prog.theory, &mut voc, 3);
        assert_eq!(res.instance.len(), 4);
        assert_eq!(res.rounds, 3);
    }

    #[test]
    fn fact_budget_stops_run() {
        let prog = parse_program("E(X,Y) -> exists Z . E(Y,Z). E(a,b).").unwrap();
        let mut voc = prog.voc.clone();
        let res = chase(
            &prog.instance,
            &prog.theory,
            &mut voc,
            ChaseConfig { max_rounds: u32::MAX, max_facts: 5, ..Default::default() },
        );
        assert_eq!(res.status, ChaseStatus::FactBudget);
        assert!(res.instance.len() >= 5);
    }

    #[test]
    fn multi_head_tgd_creates_shared_witness() {
        let prog = parse_program("P(X) -> E(X,Z), U(Z). P(a).").unwrap();
        let mut voc = prog.voc.clone();
        let res = chase(&prog.instance, &prog.theory, &mut voc, ChaseConfig::default());
        assert!(res.is_fixpoint());
        let e = voc.find_pred("E").unwrap();
        let u = voc.find_pred("U").unwrap();
        let ef = res.instance.facts_with_pred(e);
        let uf = res.instance.facts_with_pred(u);
        assert_eq!((ef.len(), uf.len()), (1, 1));
        // Same witness in both atoms.
        let w1 = res.instance.fact(ef[0]).args[1];
        let w2 = res.instance.fact(uf[0]).args[0];
        assert_eq!(w1, w2);
    }
}
