//! The chase engine, implementing Section 1.1 of the paper.
//!
//! `Chase¹(D,T)` is one *simultaneous* round: for every rule `t` and every
//! frontier tuple `x̄` satisfying the body such that no witness for the
//! head exists (the **non-oblivious** condition — "new elements are only
//! created if needed"), a fresh labelled null `c_{t,x̄}` is created and the
//! head atom added. `Chaseⁱ⁺¹ = Chase¹(Chaseⁱ)` and `Chase = ⋃ᵢ Chaseⁱ`.
//!
//! The engine also provides the *oblivious* chase (fires every trigger
//! regardless of existing witnesses) for the comparisons in Section 1.1's
//! footnote and our benchmarks.
//!
//! ## Evaluation strategy
//!
//! Round `i+1` can only contain a *violated* trigger whose body joins at
//! least one fact created in round `i`: a trigger lying entirely in older
//! facts was already enumerated in round `i` and either repaired (so its
//! head is now witnessed) or skipped because a witness existed (and the
//! chase never deletes facts, so it still exists). The default
//! [`ChaseStrategy::SemiNaive`] exploits this by pinning each body atom to
//! the previous round's delta in turn and completing the join against the
//! full instance — the witness check (`head_satisfied`) always consults
//! the full instance, so the paper's non-oblivious semantics is preserved
//! *exactly*. [`ChaseStrategy::Naive`] re-derives every round from scratch
//! and is kept as the differential-testing oracle; both strategies apply
//! repairs in the same canonical order (rule index, then frontier tuple),
//! so they produce identical instances, null names and depths round by
//! round.

use bddfc_core::fxhash::{FxHashMap, FxHashSet};
use bddfc_core::join::{self, JoinMode};
use bddfc_core::obs::{Event, EventSink, Null, SpanTimer, NULL};
use bddfc_core::par;
use bddfc_core::{
    hom, Binding, ConstId, Fact, Instance, PredId, Rule, Term, Theory, VarId, Vocabulary,
};
use std::ops::{ControlFlow, Range};
use std::time::Duration;

/// Which chase variant to run.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum ChaseVariant {
    /// The paper's chase: create a witness only when none exists.
    #[default]
    Restricted,
    /// Fire every trigger exactly once, regardless of existing witnesses.
    Oblivious,
}

/// How each round's triggers are enumerated. Both strategies compute the
/// same rounds; they differ only in work done (see the module docs).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum ChaseStrategy {
    /// Only enumerate body matches that join at least one fact from the
    /// previous round's delta.
    #[default]
    SemiNaive,
    /// Re-enumerate every body match against the whole instance, every
    /// round. The differential-testing oracle.
    Naive,
}

/// Resource limits for a chase run. The chase of a Datalog∃ program need
/// not terminate (Example 1), so every entry point takes a budget.
#[derive(Clone, Copy, Debug)]
pub struct ChaseConfig {
    /// Maximum number of `Chase¹` rounds.
    pub max_rounds: u32,
    /// Maximum number of facts; the run stops after the round that exceeds it.
    pub max_facts: usize,
    /// Chase variant.
    pub variant: ChaseVariant,
    /// Trigger enumeration strategy.
    pub strategy: ChaseStrategy,
}

impl Default for ChaseConfig {
    fn default() -> Self {
        ChaseConfig {
            max_rounds: 64,
            max_facts: 1_000_000,
            variant: ChaseVariant::Restricted,
            strategy: ChaseStrategy::SemiNaive,
        }
    }
}

impl ChaseConfig {
    /// A config bounded only by the number of rounds (`Chaseᵏ`).
    pub fn rounds(k: u32) -> Self {
        ChaseConfig { max_rounds: k, ..Default::default() }
    }

    /// Sets the variant.
    pub fn with_variant(mut self, v: ChaseVariant) -> Self {
        self.variant = v;
        self
    }

    /// Sets the evaluation strategy.
    pub fn with_strategy(mut self, s: ChaseStrategy) -> Self {
        self.strategy = s;
        self
    }

    /// Sets the fact budget.
    pub fn with_max_facts(mut self, n: usize) -> Self {
        self.max_facts = n;
        self
    }
}

/// Why a chase run stopped.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ChaseStatus {
    /// A fixpoint was reached: the result models the theory.
    Fixpoint,
    /// The round budget was exhausted before reaching a fixpoint.
    RoundBudget,
    /// The fact budget was exhausted before reaching a fixpoint.
    FactBudget,
}

/// Work counters for a chase run — the trigger counter the benchmarks
/// compare across strategies.
///
/// **Deprecation note:** these ad-hoc fields predate the unified
/// telemetry layer and are subsumed by the per-round `chase`/`round`
/// events emitted into any [`EventSink`] (see [`chase_with`] and
/// [`bddfc_core::obs`]), which additionally report candidates, witness
/// checks, triggers pruned and nulls created. The fields are kept for
/// the existing work-ratio assertions; new instrumentation should
/// attach a sink instead of growing this struct.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ChaseStats {
    /// Completed body homomorphisms enumerated in each round (including
    /// the final, empty round that certifies a fixpoint).
    pub body_matches_per_round: Vec<u64>,
    /// Wall-clock time of each round (enumeration + repair application),
    /// aligned with [`ChaseStats::body_matches_per_round`].
    pub round_wall_times: Vec<Duration>,
    /// Worker-thread count the run was configured with (see
    /// [`bddfc_core::par::num_threads`]); purely informational — outputs
    /// are identical at any thread count.
    pub threads_used: usize,
}

impl ChaseStats {
    /// Total body-match attempts across all rounds.
    pub fn total_body_matches(&self) -> u64 {
        self.body_matches_per_round.iter().sum()
    }

    /// Total wall-clock time across all rounds.
    pub fn total_wall_time(&self) -> Duration {
        self.round_wall_times.iter().sum()
    }
}

/// The result of a chase run.
#[derive(Clone, Debug)]
pub struct ChaseResult {
    /// The (partially) chased instance.
    pub instance: Instance,
    /// Prefix lengths of `instance.facts()` by derivation depth:
    /// the first `round_ends[d]` facts have depth ≤ `d`, so
    /// `round_ends[0]` is the size of the input `D`. The chase is
    /// append-only, which makes depth a positional property — storing
    /// the boundaries costs O(rounds) instead of a map entry per fact.
    round_ends: Vec<usize>,
    /// Number of completed rounds.
    pub rounds: u32,
    /// Why the run stopped.
    pub status: ChaseStatus,
    /// Work counters (see [`ChaseStats`]).
    pub stats: ChaseStats,
}

impl ChaseResult {
    /// Did the chase terminate (so `instance ⊨ T`)?
    pub fn is_fixpoint(&self) -> bool {
        self.status == ChaseStatus::Fixpoint
    }

    /// Derivation depth of the fact stored at `idx`: the round at which
    /// it appeared (`0` for the facts of `D`). This is the depth the BDD
    /// property (Section 1.1) quantifies over.
    pub fn fact_depth(&self, idx: bddfc_core::FactIdx) -> u32 {
        self.round_ends.partition_point(|&end| end <= idx) as u32
    }

    /// Derivation depth of every fact, as a map (see
    /// [`ChaseResult::fact_depth`]); built on demand — round-by-round
    /// comparisons and certificate extraction want the associative view,
    /// the chase itself never pays for it.
    pub fn depth_map(&self) -> FxHashMap<Fact, u32> {
        self.instance
            .facts()
            .iter()
            .enumerate()
            .map(|(idx, f)| (f.clone(), self.fact_depth(idx)))
            .collect()
    }

    /// The maximal derivation depth of any fact.
    pub fn max_depth(&self) -> u32 {
        (self.round_ends.len() - 1) as u32
    }
}

/// One pending repair: a rule index plus the frontier key to repair. The
/// `(rule_idx, key)` pair identifies the paper's trigger `(t, x̄)` and
/// fixes the canonical application order; everything a repair grounds is
/// a pure function of the pair (via the rule's [`RuleTemplate`]).
struct Repair {
    rule_idx: usize,
    key: Key,
}

/// One candidate trigger emitted by the parallel enumeration phase.
/// Deduplication and admission run later, sequentially, on the merged
/// list — a trigger is a pure function of its `(rule, key)` pair, so
/// first-occurrence dedup yields identical values at any shard split.
struct Candidate {
    rule_idx: usize,
    key: Key,
}

/// A compact frontier key: widths ≤ 2 (the overwhelmingly common case)
/// pack into one machine word so per-row dedup, the oblivious fired set
/// and the canonical repair sort hash and compare a `u64` instead of
/// allocating a heap vector per body match. The packed order
/// `(a << 32) | b` compares like the unpacked `(a, b)` pair, so packed
/// and wide keys induce the same canonical candidate order per rule (a
/// rule's frontier width is fixed, so a rule never mixes variants and
/// the derived cross-variant order is never exercised).
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
enum Key {
    /// Frontier width ≤ 2, packed high-to-low in frontier order.
    Packed(u64),
    /// Frontier width > 2.
    Wide(Vec<ConstId>),
}

/// Extracts the frontier key of `row` from the batch columns at `slots`.
#[inline]
fn key_of_row(batch: &join::BindingBatch, slots: &[usize], row: usize) -> Key {
    match slots[..] {
        [] => Key::Packed(0),
        [a] => Key::Packed(u64::from(batch.get(row, a).0)),
        [a, b] => Key::Packed(
            (u64::from(batch.get(row, a).0) << 32) | u64::from(batch.get(row, b).0),
        ),
        _ => Key::Wide(slots.iter().map(|&s| batch.get(row, s)).collect()),
    }
}

/// Extracts the frontier key of a full body binding (tuple engine).
/// Packs exactly like [`key_of_row`] so both engines dedup, fire and
/// sort on identical keys.
#[inline]
fn key_of_binding(frontier: &[VarId], b: &Binding) -> Key {
    match frontier {
        [] => Key::Packed(0),
        [x] => Key::Packed(u64::from(b[x].0)),
        [x, y] => Key::Packed((u64::from(b[x].0) << 32) | u64::from(b[y].0)),
        _ => Key::Wide(frontier.iter().map(|v| b[v]).collect()),
    }
}

/// Where one head-atom argument comes from when a repair grounds it: a
/// rule constant, a frontier value (by index into the sorted frontier),
/// or a fresh null (by index into the sorted existential variables).
#[derive(Clone, Copy)]
enum ArgSrc {
    Const(ConstId),
    Frontier(usize),
    Ex(usize),
}

/// How a [`RuleTemplate`] decides head satisfaction (the same three
/// shapes as [`bddfc_core::satisfaction::HeadCheck`], recompiled against
/// key slots instead of variable bindings).
enum HeadPlan {
    /// No existentials: one hash probe per head atom.
    Grounded,
    /// Exactly one head atom holds the existentials, each occurring
    /// once: grounded probes plus one posting-list scan.
    SingleAtom(usize),
    /// Shared/repeated existentials: general homomorphism search.
    General,
}

/// One admission round's witness index for a [`HeadPlan::SingleAtom`]
/// rule: the special atom's relation projected onto its non-existential
/// positions (packed into a `u64` when at most two), built once per
/// round against the frozen instance and probed once per candidate.
enum WitnessSet {
    /// The variant or plan never consults a witness for this rule.
    Unused,
    /// Projections over at most two bound positions, packed.
    Packed(FxHashSet<u64>),
    /// Wider projections, one allocated row each.
    Wide(FxHashSet<Vec<ConstId>>),
    /// No bound positions: satisfiability is bare row existence.
    AnyRow(bool),
}

/// A rule's head compiled against its sorted frontier and sorted
/// existential variables, so admission checks and repair application
/// ground head atoms straight from the trigger key — no per-candidate
/// `Binding` materialization anywhere on the hot path.
struct RuleTemplate {
    frontier: Vec<VarId>,
    /// Sorted existential variables (fresh-null creation order).
    ex: Vec<VarId>,
    /// Per head atom: predicate plus one source per argument position.
    head: Vec<(PredId, Vec<ArgSrc>)>,
    plan: HeadPlan,
}

impl RuleTemplate {
    fn new(rule: &Rule) -> Self {
        let frontier = sorted_frontier(rule);
        let mut ex: Vec<VarId> = rule.existential_vars().into_iter().collect();
        ex.sort_unstable();
        let head: Vec<(PredId, Vec<ArgSrc>)> = rule
            .head
            .iter()
            .map(|atom| {
                let srcs = atom
                    .args
                    .iter()
                    .map(|t| match t {
                        Term::Const(c) => ArgSrc::Const(*c),
                        Term::Var(v) => match frontier.binary_search(v) {
                            Ok(i) => ArgSrc::Frontier(i),
                            Err(_) => ArgSrc::Ex(
                                ex.binary_search(v).expect("head var is frontier or existential"),
                            ),
                        },
                    })
                    .collect();
                (atom.pred, srcs)
            })
            .collect();
        let plan = Self::plan_of(&head, ex.len());
        RuleTemplate { frontier, ex, head, plan }
    }

    /// Mirrors `HeadCheck::new`: every existential confined to one head
    /// atom, once each, reduces the witness check to a posting scan.
    fn plan_of(head: &[(PredId, Vec<ArgSrc>)], ex_count: usize) -> HeadPlan {
        if ex_count == 0 {
            return HeadPlan::Grounded;
        }
        let touched: Vec<usize> = head
            .iter()
            .enumerate()
            .filter(|(_, (_, srcs))| srcs.iter().any(|s| matches!(s, ArgSrc::Ex(_))))
            .map(|(i, _)| i)
            .collect();
        if let [only] = touched[..] {
            let mut counts = vec![0usize; ex_count];
            for (_, srcs) in head {
                for s in srcs {
                    if let ArgSrc::Ex(j) = s {
                        counts[*j] += 1;
                    }
                }
            }
            if counts.iter().all(|&c| c == 1) {
                return HeadPlan::SingleAtom(only);
            }
        }
        HeadPlan::General
    }

    /// The frontier values a key carries, unpacked into `buf` for packed
    /// keys (ordered like the sorted frontier — see [`key_of_row`]).
    fn key_vals<'a>(&self, key: &'a Key, buf: &'a mut [ConstId; 2]) -> &'a [ConstId] {
        match key {
            Key::Wide(v) => v,
            Key::Packed(bits) => match self.frontier.len() {
                0 => &[],
                1 => {
                    buf[0] = ConstId(*bits as u32);
                    &buf[..1]
                }
                _ => {
                    buf[0] = ConstId((*bits >> 32) as u32);
                    buf[1] = ConstId(*bits as u32);
                    &buf[..2]
                }
            },
        }
    }

    /// Is the head satisfiable in `inst` for the trigger `key`? Same
    /// verdicts as `head_satisfied` on the key's frontier binding.
    /// `witness` must be this rule's [`WitnessSet`] built against the
    /// same (frozen) instance.
    fn satisfied(&self, inst: &Instance, rule: &Rule, key: &Key, witness: &WitnessSet) -> bool {
        let mut kbuf = [ConstId(0); 2];
        let fvals = self.key_vals(key, &mut kbuf);
        match self.plan {
            HeadPlan::Grounded => (0..self.head.len()).all(|i| self.atom_holds(inst, i, fvals)),
            HeadPlan::SingleAtom(idx) => {
                (0..self.head.len()).all(|i| i == idx || self.atom_holds(inst, i, fvals))
                    && self.witness_holds(idx, fvals, witness)
            }
            HeadPlan::General => {
                let binding: Binding =
                    self.frontier.iter().copied().zip(fvals.iter().copied()).collect();
                hom::hom_exists(inst, &rule.head, &binding)
            }
        }
    }

    /// Builds the witness projection of the special atom `idx` for one
    /// admission round: the relation's rows projected onto the atom's
    /// non-existential positions. Membership of a candidate's bound
    /// values is exactly "some row agrees with the key on every bound
    /// position" — the [`HeadPlan::SingleAtom`] satisfiability test —
    /// turned into one hash probe per candidate.
    fn build_witness_set(&self, inst: &Instance, idx: usize) -> WitnessSet {
        let (pred, srcs) = &self.head[idx];
        let Some(rel) = inst.columnar().relation(*pred) else {
            return WitnessSet::AnyRow(false);
        };
        let bound: Vec<usize> = srcs
            .iter()
            .enumerate()
            .filter(|(_, s)| !matches!(s, ArgSrc::Ex(_)))
            .map(|(pos, _)| pos)
            .collect();
        match bound[..] {
            [] => WitnessSet::AnyRow(rel.rows() > 0),
            [p] => WitnessSet::Packed(
                (0..rel.rows()).map(|t| u64::from(rel.get(t, p).0)).collect(),
            ),
            [p0, p1] => WitnessSet::Packed(
                (0..rel.rows())
                    .map(|t| {
                        (u64::from(rel.get(t, p0).0) << 32) | u64::from(rel.get(t, p1).0)
                    })
                    .collect(),
            ),
            _ => WitnessSet::Wide(
                (0..rel.rows())
                    .map(|t| bound.iter().map(|&p| rel.get(t, p)).collect())
                    .collect(),
            ),
        }
    }

    /// Probes the prebuilt witness projection with the candidate's bound
    /// values (same ascending-position order the set was built in).
    fn witness_holds(&self, idx: usize, fvals: &[ConstId], witness: &WitnessSet) -> bool {
        let (_, srcs) = &self.head[idx];
        let mut vals = [ConstId(0); 8];
        let mut heap;
        let slots: &mut [ConstId] = if srcs.len() <= 8 {
            &mut vals
        } else {
            heap = vec![ConstId(0); srcs.len()];
            &mut heap
        };
        let mut n = 0;
        for s in srcs {
            match *s {
                ArgSrc::Const(c) => {
                    slots[n] = c;
                    n += 1;
                }
                ArgSrc::Frontier(i) => {
                    slots[n] = fvals[i];
                    n += 1;
                }
                ArgSrc::Ex(_) => {}
            }
        }
        let bound = &slots[..n];
        match witness {
            WitnessSet::AnyRow(nonempty) => *nonempty,
            WitnessSet::Packed(set) => {
                let packed = match bound {
                    [a] => u64::from(a.0),
                    [a, b] => (u64::from(a.0) << 32) | u64::from(b.0),
                    _ => unreachable!("packed witness has 1 or 2 bound positions"),
                };
                set.contains(&packed)
            }
            WitnessSet::Wide(set) => set.contains(bound),
            WitnessSet::Unused => {
                unreachable!("witness consulted for a rule it was not built for")
            }
        }
    }

    /// Does the (existential-free) head atom `idx`, grounded from the
    /// key, hold in the instance? Allocation-free for arity ≤ 8.
    fn atom_holds(&self, inst: &Instance, idx: usize, fvals: &[ConstId]) -> bool {
        let (pred, srcs) = &self.head[idx];
        let mut buf = [ConstId(0); 8];
        let mut heap;
        let args: &mut [ConstId] = if srcs.len() <= 8 {
            &mut buf[..srcs.len()]
        } else {
            heap = vec![ConstId(0); srcs.len()];
            &mut heap
        };
        for (slot, s) in args.iter_mut().zip(srcs) {
            *slot = match *s {
                ArgSrc::Const(c) => c,
                ArgSrc::Frontier(i) => fvals[i],
                ArgSrc::Ex(_) => unreachable!("grounded head atom has no existentials"),
            };
        }
        inst.contains_ground(*pred, args)
    }

}

/// Opaque set of `(rule, frontier key)` triggers that already fired,
/// threaded between successive [`chase_round`] calls (the oblivious
/// chase fires every trigger exactly once across the whole run).
#[derive(Default)]
pub struct FiredSet(FxHashSet<(usize, Key)>);

/// Per-rule attribution counters for one round, filled only when a
/// recording sink is installed (`S::ENABLED`); each becomes one
/// `chase`/`trigger` event keyed by rule index.
#[derive(Clone, Copy, Default)]
struct RuleWork {
    /// Completed body homomorphisms of this rule.
    body_matches: u64,
    /// Deduplicated candidate triggers of this rule reaching admission.
    candidates: u64,
    /// Repairs of this rule that actually fired.
    triggers_fired: u64,
    /// Wall time spent enumerating this rule's body joins (a gauge).
    enum_ns: u64,
}

/// Per-round work counters accumulated by the enumeration and admission
/// phases; the deterministic *fields* of the round's telemetry event.
#[derive(Default)]
struct RoundWork {
    /// Completed body homomorphisms enumerated.
    body_matches: u64,
    /// Deduplicated candidate triggers reaching admission.
    candidates: u64,
    /// Candidates whose head was actually joined against the instance
    /// (`head_satisfied`) — all of them under Restricted, only datalog
    /// rules under Oblivious.
    witness_checks: u64,
    /// Per-rule attribution, indexed by rule; **empty** when telemetry
    /// is disabled (the collectors size it iff `S::ENABLED`).
    rule_work: Vec<RuleWork>,
    /// Per-predicate hom candidate-scan attribution (empty when
    /// telemetry is disabled; tuple engine only).
    scans: hom::ScanStats,
    /// Per-predicate join build/probe attribution (empty when telemetry
    /// is disabled; batch engine only).
    joins: join::JoinStats,
}

impl RoundWork {
    /// Whether per-rule attribution is being collected this round.
    fn tracking(&self) -> bool {
        !self.rule_work.is_empty()
    }
}

/// Applies the Restricted/Oblivious admission check to the deduplicated
/// candidate triggers, in their merged (shard-boundary-independent)
/// order. Witness checks (`head_satisfied`) are read-only joins against
/// the frozen instance and run in parallel; the `fired` bookkeeping of
/// the oblivious variant mutates shared state and stays sequential.
fn admit_candidates(
    inst: &Instance,
    theory: &Theory,
    templates: &[RuleTemplate],
    variant: ChaseVariant,
    fired: &mut FxHashSet<(usize, Key)>,
    cands: Vec<Candidate>,
    work: &mut RoundWork,
) -> Vec<Repair> {
    work.candidates += cands.len() as u64;
    // unwitnessed[i]: candidate i's head has no witness in the frozen
    // instance (only consulted where the variant cares). Per-rule
    // precompiled key templates replace the general hom search on common
    // shapes and ground head atoms without building bindings.
    //
    // A rule is datalog iff its template has no existentials; consulting
    // the template avoids rebuilding variable sets per candidate.
    let is_dl: Vec<bool> = templates.iter().map(|t| t.ex.is_empty()).collect();
    work.witness_checks += match variant {
        ChaseVariant::Restricted => cands.len() as u64,
        ChaseVariant::Oblivious => {
            cands.iter().filter(|c| is_dl[c.rule_idx]).count() as u64
        }
    };
    // Witness projections for the rules whose admission will consult one
    // this round: single-special-atom existential rules under the
    // restricted variant (the oblivious variant only re-checks datalog
    // heads, which are grounded lookups).
    let mut has_cand = vec![false; templates.len()];
    for c in &cands {
        has_cand[c.rule_idx] = true;
    }
    let witness: Vec<WitnessSet> = templates
        .iter()
        .enumerate()
        .map(|(i, tmpl)| match tmpl.plan {
            HeadPlan::SingleAtom(idx)
                if has_cand[i] && variant == ChaseVariant::Restricted =>
            {
                tmpl.build_witness_set(inst, idx)
            }
            _ => WitnessSet::Unused,
        })
        .collect();
    let unwitnessed: Vec<bool> = par::par_map(&cands, |c| {
        let rule = &theory.rules[c.rule_idx];
        let tmpl = &templates[c.rule_idx];
        let wit = &witness[c.rule_idx];
        match variant {
            ChaseVariant::Restricted => !tmpl.satisfied(inst, rule, &c.key, wit),
            // Datalog rules are idempotent; skip if the head is present.
            ChaseVariant::Oblivious => {
                is_dl[c.rule_idx] && !tmpl.satisfied(inst, rule, &c.key, wit)
            }
        }
    });
    if work.tracking() {
        for c in &cands {
            work.rule_work[c.rule_idx].candidates += 1;
        }
    }
    let mut out = Vec::new();
    for (c, unwit) in cands.into_iter().zip(unwitnessed) {
        let fire = match variant {
            ChaseVariant::Restricted => unwit,
            ChaseVariant::Oblivious => {
                if is_dl[c.rule_idx] {
                    unwit
                } else {
                    fired.insert((c.rule_idx, c.key.clone()))
                }
            }
        };
        if fire {
            if work.tracking() {
                work.rule_work[c.rule_idx].triggers_fired += 1;
            }
            out.push(Repair { rule_idx: c.rule_idx, key: c.key });
        }
    }
    out
}

/// The sorted frontier of a rule (the variables a trigger key ranges over).
fn sorted_frontier(rule: &Rule) -> Vec<VarId> {
    let mut frontier: Vec<VarId> = rule.frontier().into_iter().collect();
    frontier.sort_unstable();
    frontier
}

/// Enumerates one rule's body homomorphisms over the whole instance,
/// deduplicating by frontier key. Read-only: safe as a parallel work
/// item. When `scans` is given, candidate-list walks are charged to
/// their predicates for `hom/scan` attribution.
fn enumerate_rule_naive(
    inst: &Instance,
    theory: &Theory,
    rule_idx: usize,
    frontier: &[VarId],
    scans: Option<&mut hom::ScanStats>,
) -> (Vec<Candidate>, u64) {
    let rule = &theory.rules[rule_idx];
    let mut seen: FxHashSet<Key> = FxHashSet::default();
    let mut out = Vec::new();
    let mut matches = 0u64;
    let mut visit = |b: &Binding| {
        matches += 1;
        let key = key_of_binding(frontier, b);
        if seen.insert(key.clone()) {
            out.push(Candidate { rule_idx, key });
        }
        ControlFlow::Continue(())
    };
    let _ = match scans {
        Some(s) => {
            hom::for_each_hom_scanned(inst, &rule.body, &Binding::default(), s, &mut visit)
        }
        None => hom::for_each_hom(inst, &rule.body, &Binding::default(), &mut visit),
    };
    (out, matches)
}

/// Enumerates one rule's body over the columnar store with the batched
/// join kernel, deduplicating by frontier key. The batch's rows are in
/// 1:1 correspondence with the body's homomorphisms (facts are
/// deduplicated, so a ground body atom under an assignment is exactly one
/// relation row), so the returned match count equals the tuple engine's
/// exactly; the candidate *set* is also equal because the restricted
/// binding is a pure function of the frontier key.
fn enumerate_rule_batch(
    inst: &Instance,
    theory: &Theory,
    rule_idx: usize,
    frontier: &[VarId],
    joins: Option<&mut join::JoinStats>,
    priors: Option<&join::Priors>,
) -> (Vec<Candidate>, u64) {
    let rule = &theory.rules[rule_idx];
    let batch = join::eval_body_with_priors(inst.columnar(), &rule.body, None, joins, priors);
    let matches = batch.rows() as u64;
    if batch.rows() == 0 {
        return (Vec::new(), 0);
    }
    // A non-empty batch binds every body variable, so every frontier
    // variable has a schema slot (body-less rules have empty frontiers).
    let slots: Vec<usize> = frontier
        .iter()
        .map(|&v| batch.col_of(v).expect("frontier variable bound by body"))
        .collect();
    let mut seen: FxHashSet<Key> = FxHashSet::default();
    let mut out = Vec::new();
    for row in 0..batch.rows() {
        let key = key_of_row(&batch, &slots, row);
        if seen.insert(key.clone()) {
            out.push(Candidate { rule_idx, key });
        }
    }
    (out, matches)
}

/// Collects this round's repairs against the *frozen* instance by full
/// re-enumeration, per the simultaneous semantics of `Chase¹`. Rules are
/// independent work items and enumerate in parallel; admission runs on
/// the merged candidate list. Generic over the sink *type* only: with
/// `S::ENABLED == false` (the `Null` sink) every attribution branch is
/// statically eliminated and the kernel is the PR-3 one.
///
/// The join mode ([`join::join_mode`]) is resolved here, on the calling
/// thread, *before* the parallel region — thread-local overrides do not
/// propagate into `par` workers.
fn collect_repairs_naive<S: EventSink>(
    inst: &Instance,
    theory: &Theory,
    templates: &[RuleTemplate],
    variant: ChaseVariant,
    fired: &mut FxHashSet<(usize, Key)>,
    priors: Option<&join::Priors>,
    work: &mut RoundWork,
) -> Vec<Repair> {
    if S::ENABLED && work.rule_work.is_empty() {
        work.rule_work = vec![RuleWork::default(); theory.rules.len()];
    }
    let mode = join::join_mode();
    let per_rule: Vec<(Vec<Candidate>, u64, u64, hom::ScanStats, join::JoinStats)> =
        par::par_chunks(theory.rules.len(), |range| {
            range
                .map(|rule_idx| match (mode, S::ENABLED) {
                    (JoinMode::Batch, true) => {
                        let timer = SpanTimer::start();
                        let mut joins = join::JoinStats::default();
                        let (c, m) =
                            enumerate_rule_batch(inst, theory, rule_idx, &templates[rule_idx].frontier, Some(&mut joins), priors);
                        (c, m, timer.elapsed_ns(), hom::ScanStats::default(), joins)
                    }
                    (JoinMode::Batch, false) => {
                        let (c, m) = enumerate_rule_batch(inst, theory, rule_idx, &templates[rule_idx].frontier, None, priors);
                        (c, m, 0, hom::ScanStats::default(), join::JoinStats::default())
                    }
                    (JoinMode::Tuple, true) => {
                        let timer = SpanTimer::start();
                        let mut scans = hom::ScanStats::default();
                        let (c, m) =
                            enumerate_rule_naive(inst, theory, rule_idx, &templates[rule_idx].frontier, Some(&mut scans));
                        (c, m, timer.elapsed_ns(), scans, join::JoinStats::default())
                    }
                    (JoinMode::Tuple, false) => {
                        let (c, m) = enumerate_rule_naive(inst, theory, rule_idx, &templates[rule_idx].frontier, None);
                        (c, m, 0, hom::ScanStats::default(), join::JoinStats::default())
                    }
                })
                .collect::<Vec<_>>()
        })
        .into_iter()
        .flatten()
        .collect();
    let mut cands = Vec::new();
    for (rule_idx, (rule_cands, matches, enum_ns, scans, joins)) in
        per_rule.into_iter().enumerate()
    {
        work.body_matches += matches;
        if S::ENABLED {
            work.rule_work[rule_idx].body_matches += matches;
            work.rule_work[rule_idx].enum_ns += enum_ns;
            work.scans.merge(&scans);
            work.joins.merge(&joins);
        }
        cands.extend(rule_cands);
    }
    admit_candidates(inst, theory, templates, variant, fired, cands, work)
}

/// Attempts to bind `atom` against the ground `fact`; returns the binding
/// of the atom's variables, or `None` on clash.
fn bind_atom(atom: &bddfc_core::Atom, fact: &Fact) -> Option<Binding> {
    let mut binding = Binding::default();
    for (term, &c) in atom.args.iter().zip(fact.args.iter()) {
        match term {
            Term::Const(k) => {
                if *k != c {
                    return None;
                }
            }
            Term::Var(v) => match binding.get(v) {
                Some(&b) if b != c => return None,
                _ => {
                    binding.insert(*v, c);
                }
            },
        }
    }
    Some(binding)
}

/// Collects this round's repairs semi-naively: only body matches that use
/// at least one fact of `delta` (the previous round's new facts) are
/// enumerated, by pinning each body atom to delta facts in turn and
/// completing the join against the full frozen instance. Witness checks
/// also consult the full instance. `first_round` makes body-less rules
/// (which join nothing) fire on the opening round.
fn collect_repairs_seminaive<S: EventSink>(
    inst: &Instance,
    theory: &Theory,
    templates: &[RuleTemplate],
    variant: ChaseVariant,
    fired: &mut FxHashSet<(usize, Key)>,
    delta: &[Fact],
    first_round: bool,
    priors: Option<&join::Priors>,
    work: &mut RoundWork,
) -> Vec<Repair> {
    // Resolved on the calling thread (thread-local overrides do not cross
    // into `par` workers).
    if join::join_mode() == JoinMode::Batch {
        return collect_repairs_seminaive_batch::<S>(
            inst,
            theory,
            templates,
            variant,
            fired,
            delta,
            first_round,
            priors,
            work,
        );
    }
    // The tuple engine orders atoms inside the homomorphism search
    // itself; priors only steer the batch planner.
    let _ = priors;
    if S::ENABLED && work.rule_work.is_empty() {
        work.rule_work = vec![RuleWork::default(); theory.rules.len()];
    }
    let mut delta_by_pred: FxHashMap<PredId, Vec<&Fact>> = FxHashMap::default();
    for f in delta {
        delta_by_pred.entry(f.pred).or_default().push(f);
    }
    // A `(rule, pinned atom, delta fact)` join is an independent, read-only
    // work item. Flatten them in the canonical (rule, pin, delta-order)
    // nesting so the merged candidate stream is the sequential one.
    struct Work<'a> {
        rule_idx: usize,
        pin: usize,
        dfact: &'a Fact,
    }
    // Per-shard attribution (rule wall/matches + predicate scans),
    // merged sequentially; `None` when telemetry is disabled.
    struct ShardAttr {
        rule_matches: Vec<u64>,
        rule_ns: Vec<u64>,
        scans: hom::ScanStats,
    }
    let mut cands: Vec<Candidate> = Vec::new();
    let mut items: Vec<Work> = Vec::new();
    for (rule_idx, rule) in theory.rules.iter().enumerate() {
        if rule.body.is_empty() {
            // A body-less rule has the single empty trigger; it cannot join
            // a delta, so it is only ever *new* on the opening round.
            if first_round {
                work.body_matches += 1;
                if S::ENABLED {
                    work.rule_work[rule_idx].body_matches += 1;
                }
                cands.push(Candidate { rule_idx, key: Key::Packed(0) });
            }
            continue;
        }
        for pin in 0..rule.body.len() {
            let Some(dfacts) = delta_by_pred.get(&rule.body[pin].pred) else { continue };
            items.extend(dfacts.iter().map(|&dfact| Work { rule_idx, pin, dfact }));
        }
    }
    // The pinned atom's residual body, per (rule, pin), shared read-only
    // across shards.
    let rests: Vec<Vec<Vec<bddfc_core::Atom>>> = theory
        .rules
        .iter()
        .map(|rule| {
            (0..rule.body.len())
                .map(|pin| {
                    rule.body
                        .iter()
                        .enumerate()
                        .filter(|(i, _)| *i != pin)
                        .map(|(_, a)| a.clone())
                        .collect()
                })
                .collect()
        })
        .collect();
    // Phase 1 (parallel): complete each pinned join against the frozen
    // instance; every shard emits candidates in work-list order.
    let shard_out: Vec<(Vec<Candidate>, u64, Option<ShardAttr>)> =
        par::par_chunks(items.len(), |range| {
            let mut out = Vec::new();
            let mut matches = 0u64;
            let mut attr = if S::ENABLED {
                Some(ShardAttr {
                    rule_matches: vec![0; theory.rules.len()],
                    rule_ns: vec![0; theory.rules.len()],
                    scans: hom::ScanStats::default(),
                })
            } else {
                None
            };
            for w in &items[range] {
                let rule = &theory.rules[w.rule_idx];
                let Some(binding) = bind_atom(&rule.body[w.pin], w.dfact) else { continue };
                let frontier = &templates[w.rule_idx].frontier;
                let before = matches;
                let mut visit = |b: &Binding| {
                    matches += 1;
                    let key = key_of_binding(frontier, b);
                    out.push(Candidate { rule_idx: w.rule_idx, key });
                    ControlFlow::Continue(())
                };
                match attr.as_mut() {
                    Some(a) => {
                        let timer = SpanTimer::start();
                        let _ = hom::for_each_hom_scanned(
                            inst,
                            &rests[w.rule_idx][w.pin],
                            &binding,
                            &mut a.scans,
                            &mut visit,
                        );
                        a.rule_ns[w.rule_idx] += timer.elapsed_ns();
                        a.rule_matches[w.rule_idx] += matches - before;
                    }
                    None => {
                        let _ = hom::for_each_hom(
                            inst,
                            &rests[w.rule_idx][w.pin],
                            &binding,
                            &mut visit,
                        );
                    }
                }
            }
            (out, matches, attr)
        });
    // Phase 2 (sequential): merge in input order, dedup per (rule, key) —
    // first occurrence wins, and its restricted binding is determined by
    // the key, so the surviving set is shard-split-independent.
    let mut seen: FxHashSet<(usize, Key)> = FxHashSet::default();
    for (shard, matches, attr) in shard_out {
        work.body_matches += matches;
        if let Some(a) = attr {
            for (rw, (&m, &ns)) in
                work.rule_work.iter_mut().zip(a.rule_matches.iter().zip(&a.rule_ns))
            {
                rw.body_matches += m;
                rw.enum_ns += ns;
            }
            work.scans.merge(&a.scans);
        }
        for c in shard {
            if seen.insert((c.rule_idx, c.key.clone())) {
                cands.push(c);
            }
        }
    }
    admit_candidates(inst, theory, templates, variant, fired, cands, work)
}

/// The batched-kernel counterpart of [`collect_repairs_seminaive`]: the
/// same `(rule, pinned atom)` decomposition, but each pinned atom joins
/// its *whole* delta segment in one kernel call instead of one call per
/// delta fact. The delta exploits the append-only columnar layout:
/// between rounds nothing but the round's new facts is inserted, so the
/// delta facts of predicate `p` are exactly the last `delta_count(p)`
/// rows of `p`'s relation — a contiguous tail segment, no copying.
///
/// Candidates carry `(rule, key)` only out of the parallel phase; the
/// frontier-restricted binding is a pure function of the key and is
/// materialized after global first-occurrence dedup, so the surviving
/// candidate set (and everything downstream) is identical to the tuple
/// path's at any shard split.
fn collect_repairs_seminaive_batch<S: EventSink>(
    inst: &Instance,
    theory: &Theory,
    templates: &[RuleTemplate],
    variant: ChaseVariant,
    fired: &mut FxHashSet<(usize, Key)>,
    delta: &[Fact],
    first_round: bool,
    priors: Option<&join::Priors>,
    work: &mut RoundWork,
) -> Vec<Repair> {
    if S::ENABLED && work.rule_work.is_empty() {
        work.rule_work = vec![RuleWork::default(); theory.rules.len()];
    }
    let mut delta_count: FxHashMap<PredId, usize> = FxHashMap::default();
    for f in delta {
        *delta_count.entry(f.pred).or_default() += 1;
    }
    let mut cands: Vec<Candidate> = Vec::new();
    /// One `(rule, pinned atom)` join restricted to the pin's delta tail.
    struct BatchWork {
        rule_idx: usize,
        pin: usize,
        range: Range<usize>,
    }
    let mut items: Vec<BatchWork> = Vec::new();
    for (rule_idx, rule) in theory.rules.iter().enumerate() {
        if rule.body.is_empty() {
            // Same as the tuple path: the single empty trigger is only
            // ever new on the opening round.
            if first_round {
                work.body_matches += 1;
                if S::ENABLED {
                    work.rule_work[rule_idx].body_matches += 1;
                }
                cands.push(Candidate { rule_idx, key: Key::Packed(0) });
            }
            continue;
        }
        for pin in 0..rule.body.len() {
            let Some(&k) = delta_count.get(&rule.body[pin].pred) else { continue };
            let rows = inst.columnar().rows(rule.body[pin].pred);
            debug_assert!(k <= rows, "delta larger than its relation");
            items.push(BatchWork { rule_idx, pin, range: rows - k..rows });
        }
    }
    /// Per-shard attribution, merged sequentially; `None` when telemetry
    /// is disabled.
    struct ShardAttr {
        rule_matches: Vec<u64>,
        rule_ns: Vec<u64>,
        joins: join::JoinStats,
    }
    // Phase 1 (parallel): one kernel evaluation per work item; shards
    // emit locally-new `(rule, packed key)` pairs in work-list order.
    // Shard-local dedup is sound because phase 2 dedups again globally:
    // the first occurrence in the merged stream survives either way, so
    // the surviving set is still shard-split-independent.
    let shard_out: Vec<(Vec<(usize, Key)>, u64, Option<ShardAttr>)> =
        par::par_chunks(items.len(), |range| {
            let mut out = Vec::new();
            let mut matches = 0u64;
            let mut local_seen: FxHashSet<(usize, Key)> = FxHashSet::default();
            let mut attr = if S::ENABLED {
                Some(ShardAttr {
                    rule_matches: vec![0; theory.rules.len()],
                    rule_ns: vec![0; theory.rules.len()],
                    joins: join::JoinStats::default(),
                })
            } else {
                None
            };
            for w in &items[range] {
                let rule = &theory.rules[w.rule_idx];
                let timer = attr.is_some().then(SpanTimer::start);
                let batch = join::eval_body_with_priors(
                    inst.columnar(),
                    &rule.body,
                    Some((w.pin, w.range.clone())),
                    attr.as_mut().map(|a| &mut a.joins),
                    priors,
                );
                matches += batch.rows() as u64;
                if batch.rows() > 0 {
                    let slots: Vec<usize> = templates[w.rule_idx]
                        .frontier
                        .iter()
                        .map(|&v| batch.col_of(v).expect("frontier variable bound by body"))
                        .collect();
                    for row in 0..batch.rows() {
                        let k = (w.rule_idx, key_of_row(&batch, &slots, row));
                        if !local_seen.contains(&k) {
                            local_seen.insert(k.clone());
                            out.push(k);
                        }
                    }
                }
                if let Some(a) = attr.as_mut() {
                    a.rule_ns[w.rule_idx] += timer.expect("timer set with attr").elapsed_ns();
                    a.rule_matches[w.rule_idx] += batch.rows() as u64;
                }
            }
            (out, matches, attr)
        });
    // Phase 2 (sequential): merge in input order, dedup per (rule, key),
    // materialize the key-determined bindings for the survivors. With a
    // single shard the local dedup above was already global, so the
    // re-check is skipped (the surviving set is identical either way).
    let single_shard = shard_out.len() == 1;
    let mut seen: FxHashSet<(usize, Key)> = FxHashSet::default();
    for (shard, matches, attr) in shard_out {
        work.body_matches += matches;
        if let Some(a) = attr {
            for (rw, (&m, &ns)) in
                work.rule_work.iter_mut().zip(a.rule_matches.iter().zip(&a.rule_ns))
            {
                rw.body_matches += m;
                rw.enum_ns += ns;
            }
            work.joins.merge(&a.joins);
        }
        for k in shard {
            if single_shard || !seen.contains(&k) {
                if !single_shard {
                    seen.insert(k.clone());
                }
                let (rule_idx, key) = k;
                cands.push(Candidate { rule_idx, key });
            }
        }
    }
    admit_candidates(inst, theory, templates, variant, fired, cands, work)
}

/// Applies repairs in the canonical `(rule, frontier tuple)` order — the
/// order both strategies share, so fresh-null naming is reproducible and
/// strategy-independent. Head atoms ground straight from each repair's
/// key through the rule's [`RuleTemplate`] (fresh nulls created in
/// sorted-existential order, as before) into a reused scratch buffer, so
/// the only allocations are the genuinely new facts. Returns the
/// instance length *before* the insertions (so the new facts of the
/// round are `inst.facts()[start..]`) and the number of fresh nulls
/// invented.
fn apply_repairs(
    inst: &mut Instance,
    templates: &[RuleTemplate],
    voc: &mut Vocabulary,
    mut repairs: Vec<Repair>,
    mut record: Option<&mut Vec<(Fact, usize)>>,
) -> (usize, u64) {
    repairs.sort_by(|a, b| (a.rule_idx, &a.key).cmp(&(b.rule_idx, &b.key)));
    // Most repairs insert their head atoms; reserving up front keeps the
    // content-hash table from rehashing mid-round.
    inst.reserve(repairs.iter().map(|r| templates[r.rule_idx].head.len()).sum());
    let start = inst.len();
    let mut nulls_created = 0u64;
    let mut exvals: Vec<ConstId> = Vec::new();
    let mut args: Vec<ConstId> = Vec::new();
    for (repair_idx, repair) in repairs.iter().enumerate() {
        let tmpl = &templates[repair.rule_idx];
        let mut kbuf = [ConstId(0); 2];
        let fvals = tmpl.key_vals(&repair.key, &mut kbuf);
        exvals.clear();
        exvals.extend(tmpl.ex.iter().map(|_| voc.fresh_null("n")));
        nulls_created += tmpl.ex.len() as u64;
        for (pred, srcs) in &tmpl.head {
            args.clear();
            args.extend(srcs.iter().map(|s| match *s {
                ArgSrc::Const(c) => c,
                ArgSrc::Frontier(i) => fvals[i],
                ArgSrc::Ex(j) => exvals[j],
            }));
            let inserted = inst.insert_ground(*pred, &args);
            if inserted {
                // Only the traced path (incremental maintenance) pays for
                // the Fact materialization; the hot path passes `None`.
                if let Some(out) = record.as_deref_mut() {
                    out.push((Fact::new(*pred, args.clone()), repair_idx));
                }
            }
        }
    }
    (start, nulls_created)
}

/// Runs one naive `Chase¹` round: one simultaneous round, enumerated
/// against the whole instance. Returns the new facts; the instance is
/// mutated in place. This is the one-shot oracle API — budgeted runs
/// should go through [`chase`] or [`ChaseStepper`].
pub fn chase_round(
    inst: &mut Instance,
    theory: &Theory,
    voc: &mut Vocabulary,
    variant: ChaseVariant,
    fired: &mut FiredSet,
) -> Vec<Fact> {
    let mut work = RoundWork::default();
    let templates: Vec<RuleTemplate> = theory.rules.iter().map(RuleTemplate::new).collect();
    let repairs = collect_repairs_naive::<Null>(
        inst,
        theory,
        &templates,
        variant,
        &mut fired.0,
        None,
        &mut work,
    );
    let (start, _) = apply_repairs(inst, &templates, voc, repairs, None);
    inst.facts()[start..].to_vec()
}

/// A resumable round-by-round chase driver: owns the growing instance,
/// the previous round's delta and the work counters, so callers (like the
/// certain-answer loop) can interleave their own checks between rounds
/// while still getting semi-naive evaluation.
///
/// The driver is generic over an [`EventSink`]; the default [`Null`]
/// sink compiles the telemetry away entirely (see [`bddfc_core::obs`]).
/// Each completed [`ChaseStepper::step`] emits one `chase`/`round`
/// event whose fields are round, body_matches, candidates,
/// witness_checks, triggers_fired, triggers_pruned, new_facts,
/// nulls_created and facts_total, with wall_ns/threads gauges.
pub struct ChaseStepper<'t, S: EventSink = Null> {
    theory: &'t Theory,
    /// The instance chased so far.
    pub instance: Instance,
    variant: ChaseVariant,
    strategy: ChaseStrategy,
    fired: FxHashSet<(usize, Key)>,
    /// Per-rule key templates, compiled once from the theory.
    templates: Vec<RuleTemplate>,
    /// The previous round's delta, as a range into `instance.facts()`
    /// (the chase is append-only, so a round's new facts are a suffix).
    delta: Range<usize>,
    first_round: bool,
    rounds_done: u64,
    sink: &'t S,
    parent_span: u64,
    /// Static cardinality priors the batch join planner consults as
    /// tie-breakers (see [`ChaseStepper::with_priors`]).
    priors: Option<join::Priors>,
    /// Work counters, one entry per completed [`ChaseStepper::step`].
    pub stats: ChaseStats,
}

impl<'t> ChaseStepper<'t, Null> {
    /// Starts a chase of `db` under `theory` with telemetry disabled.
    pub fn new(
        db: &Instance,
        theory: &'t Theory,
        variant: ChaseVariant,
        strategy: ChaseStrategy,
    ) -> Self {
        ChaseStepper::with_sink(db, theory, variant, strategy, &NULL)
    }
}

impl<'t, S: EventSink> ChaseStepper<'t, S> {
    /// Starts a chase of `db` under `theory`, reporting per-round
    /// telemetry into `sink`.
    pub fn with_sink(
        db: &Instance,
        theory: &'t Theory,
        variant: ChaseVariant,
        strategy: ChaseStrategy,
        sink: &'t S,
    ) -> Self {
        ChaseStepper {
            theory,
            templates: theory.rules.iter().map(RuleTemplate::new).collect(),
            instance: db.clone(),
            variant,
            strategy,
            fired: FxHashSet::default(),
            delta: 0..db.len(),
            first_round: true,
            rounds_done: 0,
            sink,
            parent_span: 0,
            priors: None,
            stats: ChaseStats { threads_used: par::num_threads(), ..ChaseStats::default() },
        }
    }

    /// Resumes a chase over an already (partially) chased `instance`:
    /// `delta` marks the suffix of `instance.facts()` that has not yet
    /// been enumerated from — typically facts appended since the last
    /// fixpoint. Unlike [`ChaseStepper::with_sink`] this takes ownership
    /// of the instance (no clone) and skips the full first-round
    /// enumeration: the semi-naive invariant assumed is that every
    /// trigger contained entirely in `instance.facts()[..delta.start]`
    /// has already been processed. Body-less rules do not re-fire on a
    /// resumed stepper (they fired on the original first round), and the
    /// oblivious fired-set starts empty — resumption is meant for the
    /// restricted variant, where admission is stateless.
    ///
    /// This is the incremental-maintenance entry point: an insertion is
    /// exactly "append the new facts, resume with them as the delta".
    pub fn resume(
        instance: Instance,
        theory: &'t Theory,
        variant: ChaseVariant,
        strategy: ChaseStrategy,
        sink: &'t S,
        delta: Range<usize>,
    ) -> Self {
        debug_assert!(delta.end <= instance.len());
        ChaseStepper {
            theory,
            templates: theory.rules.iter().map(RuleTemplate::new).collect(),
            instance,
            variant,
            strategy,
            fired: FxHashSet::default(),
            delta,
            first_round: false,
            rounds_done: 0,
            sink,
            parent_span: 0,
            priors: None,
            stats: ChaseStats { threads_used: par::num_threads(), ..ChaseStats::default() },
        }
    }

    /// Parents every span and event this stepper emits under `span`
    /// (typically a `chase`/`run` span the caller opened on the same
    /// sink). 0 — the default — means "no enclosing span".
    pub fn under_span(mut self, span: u64) -> Self {
        self.parent_span = span;
        self
    }

    /// Seeds the batch join planner with static cardinality priors (from
    /// the `bddfc-analyze` cost model). Priors are tie-breakers below
    /// live cardinalities, so the chase *result* — facts, null names,
    /// rounds — is identical with or without them; only the join order
    /// (and hence work) on runtime-tied atoms can change.
    pub fn with_priors(mut self, priors: join::Priors) -> Self {
        self.priors = (!priors.is_empty()).then_some(priors);
        self
    }

    /// Rounds completed so far by this stepper.
    pub fn rounds_done(&self) -> u64 {
        self.rounds_done
    }

    /// The current unprocessed delta: the facts appended by the last
    /// completed round (or the initial delta before any round), which the
    /// next [`ChaseStepper::step`] will enumerate from. A driver that
    /// stops before fixpoint hands this to a later
    /// [`ChaseStepper::resume`] to pick up exactly where it left off.
    pub fn pending_delta(&self) -> Range<usize> {
        self.delta.clone()
    }

    /// Consumes the stepper, returning the chased instance without a
    /// clone.
    pub fn into_instance(self) -> Instance {
        self.instance
    }

    /// Runs one `Chase¹` round; returns the facts it added (empty iff the
    /// instance reached a fixpoint of the theory).
    ///
    /// With a recording sink, each round opens a `chase`/`round` span
    /// (keyed by round number) under which it emits one `chase`/`trigger`
    /// event per active rule (keyed by rule index), one `hom`/`scan`
    /// event per scanned predicate (keyed by predicate id; tuple join
    /// mode), one `join`/`build` + `join`/`probe` event per joined
    /// predicate (keyed by predicate id; batch join mode) and the round
    /// summary event.
    pub fn step(&mut self, voc: &mut Vocabulary) -> Vec<Fact> {
        let start = self.step_indexed(voc);
        self.instance.facts()[start..].to_vec()
    }

    /// Runs one round like [`ChaseStepper::step`] but returns the index of
    /// the first fact added this round instead of cloning the delta: the
    /// new facts are `instance.facts()[start..]`. Drivers that only need
    /// the delta's *size* (like the fixpoint check in [`chase_with`]) stay
    /// allocation-free.
    pub fn step_indexed(&mut self, voc: &mut Vocabulary) -> usize {
        self.step_impl(voc, None)
    }

    /// Runs one round like [`ChaseStepper::step_indexed`], additionally
    /// appending `(fact, derivation)` pairs for every fact the round
    /// inserted to `out` — the premises are the grounded body of one
    /// (canonically chosen) homomorphism witnessing the trigger against
    /// the pre-round instance. This is what incremental maintenance
    /// records so DRed retraction can later over-delete exactly the
    /// facts whose recorded derivations lost a premise.
    ///
    /// Costs one extra homomorphism search per fired trigger; the
    /// untraced path is unaffected.
    pub fn step_traced(
        &mut self,
        voc: &mut Vocabulary,
        out: &mut Vec<(Fact, crate::trace::Derivation)>,
    ) -> usize {
        self.step_impl(voc, Some(out))
    }

    fn step_impl(
        &mut self,
        voc: &mut Vocabulary,
        traced: Option<&mut Vec<(Fact, crate::trace::Derivation)>>,
    ) -> usize {
        let timer = SpanTimer::start();
        let round_span = if S::ENABLED {
            self.sink.span_open(
                "chase",
                "round",
                self.parent_span,
                Some(("round", self.rounds_done + 1)),
            )
        } else {
            0
        };
        let mut work = RoundWork::default();
        let repairs = match self.strategy {
            ChaseStrategy::Naive => collect_repairs_naive::<S>(
                &self.instance,
                self.theory,
                &self.templates,
                self.variant,
                &mut self.fired,
                self.priors.as_ref(),
                &mut work,
            ),
            ChaseStrategy::SemiNaive => collect_repairs_seminaive::<S>(
                &self.instance,
                self.theory,
                &self.templates,
                self.variant,
                &mut self.fired,
                &self.instance.facts()[self.delta.clone()],
                self.first_round,
                self.priors.as_ref(),
                &mut work,
            ),
        };
        self.first_round = false;
        let triggers_fired = repairs.len() as u64;
        self.stats.body_matches_per_round.push(work.body_matches);
        // Premise recovery must run against the pre-round instance, and
        // must align with the order apply_repairs inserts in — so sort
        // here (the comparator is the one apply_repairs uses; sorting
        // twice is idempotent) and ground one witnessing homomorphism
        // per repair.
        let mut repairs = repairs;
        let mut recorded: Vec<(Fact, usize)> = Vec::new();
        let premises: Vec<(usize, Vec<Fact>)> = if traced.is_some() {
            repairs.sort_by(|a, b| (a.rule_idx, &a.key).cmp(&(b.rule_idx, &b.key)));
            repairs
                .iter()
                .map(|r| {
                    let tmpl = &self.templates[r.rule_idx];
                    let mut kbuf = [ConstId(0); 2];
                    let fvals = tmpl.key_vals(&r.key, &mut kbuf);
                    let mut init = Binding::default();
                    for (&v, &c) in tmpl.frontier.iter().zip(fvals) {
                        init.insert(v, c);
                    }
                    let rule = &self.theory.rules[r.rule_idx];
                    let b = hom::find_hom(&self.instance, &rule.body, &init)
                        .expect("repair key was produced by a body homomorphism");
                    let prem = rule
                        .body
                        .iter()
                        .map(|a| {
                            a.apply(&|v| b.get(&v).map(|&c| Term::Const(c)))
                                .to_fact()
                                .expect("body grounded by homomorphism")
                        })
                        .collect();
                    (r.rule_idx, prem)
                })
                .collect()
        } else {
            Vec::new()
        };
        let record = traced.is_some().then_some(&mut recorded);
        let (start, nulls_created) =
            apply_repairs(&mut self.instance, &self.templates, voc, repairs, record);
        if let Some(out) = traced {
            let round = u32::try_from(self.rounds_done + 1).unwrap_or(u32::MAX);
            for (fact, repair_idx) in recorded {
                let (rule_idx, prem) = &premises[repair_idx];
                out.push((
                    fact,
                    crate::trace::Derivation {
                        rule_idx: *rule_idx,
                        premises: prem.clone(),
                        round,
                    },
                ));
            }
        }
        let new_fact_count = (self.instance.len() - start) as u64;
        self.delta = start..self.instance.len();
        let wall = timer.elapsed();
        self.stats.round_wall_times.push(wall);
        self.rounds_done += 1;
        if S::ENABLED {
            for (rule_idx, rw) in work.rule_work.iter().enumerate() {
                if rw.body_matches == 0 && rw.candidates == 0 && rw.triggers_fired == 0 {
                    continue;
                }
                self.sink.record(Event {
                    engine: "chase",
                    name: "trigger",
                    parent: round_span,
                    key: Some(("rule", rule_idx as u64)),
                    fields: &[
                        ("body_matches", rw.body_matches),
                        ("candidates", rw.candidates),
                        ("triggers_fired", rw.triggers_fired),
                    ],
                    gauges: &[("wall_ns", rw.enum_ns)],
                });
            }
            for (pred, scans, candidates) in work.scans.sorted() {
                self.sink.record(Event {
                    engine: "hom",
                    name: "scan",
                    parent: round_span,
                    key: Some(("pred", u64::from(pred.0))),
                    fields: &[("scans", scans), ("candidates", candidates)],
                    gauges: &[],
                });
            }
            for (pred, c) in work.joins.sorted() {
                if c.builds > 0 {
                    self.sink.record(Event {
                        engine: "join",
                        name: "build",
                        parent: round_span,
                        key: Some(("pred", u64::from(pred.0))),
                        fields: &[("builds", c.builds), ("rows", c.build_rows)],
                        gauges: &[("wall_ns", c.build_ns)],
                    });
                }
                if c.probes > 0 {
                    self.sink.record(Event {
                        engine: "join",
                        name: "probe",
                        parent: round_span,
                        key: Some(("pred", u64::from(pred.0))),
                        fields: &[
                            ("probes", c.probes),
                            ("rows", c.probe_rows),
                            ("matches", c.matches),
                        ],
                        gauges: &[("wall_ns", c.probe_ns)],
                    });
                }
            }
            self.sink.record(Event {
                engine: "chase",
                name: "round",
                parent: round_span,
                key: None,
                fields: &[
                    ("round", self.rounds_done),
                    ("body_matches", work.body_matches),
                    ("candidates", work.candidates),
                    ("witness_checks", work.witness_checks),
                    ("triggers_fired", triggers_fired),
                    ("triggers_pruned", work.candidates - triggers_fired),
                    ("new_facts", new_fact_count),
                    ("nulls_created", nulls_created),
                    ("facts_total", self.instance.len() as u64),
                ],
                gauges: &[
                    ("wall_ns", u64::try_from(wall.as_nanos()).unwrap_or(u64::MAX)),
                    ("threads", par::num_threads() as u64),
                ],
            });
            self.sink.span_close(round_span);
        }
        start
    }
}

/// Runs the chase of `db` under `theory` within the given budget.
pub fn chase(
    db: &Instance,
    theory: &Theory,
    voc: &mut Vocabulary,
    config: ChaseConfig,
) -> ChaseResult {
    chase_with(db, theory, voc, config, &NULL)
}

/// Like [`chase`], but reports per-round telemetry into `sink` (one
/// `chase`/`round` span + event per completed [`ChaseStepper::step`],
/// all nested under one `chase`/`run` span).
pub fn chase_with<S: EventSink>(
    db: &Instance,
    theory: &Theory,
    voc: &mut Vocabulary,
    config: ChaseConfig,
    sink: &S,
) -> ChaseResult {
    chase_with_priors(db, theory, voc, config, sink, None)
}

/// [`chase_with`] seeding the batch join planner with static
/// cardinality priors (see [`ChaseStepper::with_priors`]; the chase
/// result is invariant, only join work can differ).
pub fn chase_with_priors<S: EventSink>(
    db: &Instance,
    theory: &Theory,
    voc: &mut Vocabulary,
    config: ChaseConfig,
    sink: &S,
    priors: Option<join::Priors>,
) -> ChaseResult {
    let run_span = if S::ENABLED { sink.span_open("chase", "run", 0, None) } else { 0 };
    // A run with no finite budget at all only terminates if the chase
    // does; when the position dependency graph has a special-edge cycle
    // that cannot be proven, so say so up front (`bddfc-lint` reports the
    // same finding as B103, with the full cycle witness).
    if S::ENABLED && config.max_rounds == u32::MAX && config.max_facts == usize::MAX {
        if let Some(cycle) = bddfc_core::posgraph::PosGraph::new(theory).special_cycle() {
            sink.record(Event {
                engine: "chase",
                name: "warning",
                parent: run_span,
                key: Some(("rule", cycle[0].rule as u64)),
                fields: &[
                    ("not_weakly_acyclic", 1),
                    ("cycle_edges", cycle.len() as u64),
                ],
                gauges: &[],
            });
        }
    }
    let mut stepper =
        ChaseStepper::with_sink(db, theory, config.variant, config.strategy, sink)
            .under_span(run_span);
    if let Some(p) = priors {
        stepper = stepper.with_priors(p);
    }
    let mut round_ends = vec![db.len()];
    let mut rounds = 0;
    let status = loop {
        if rounds >= config.max_rounds {
            break ChaseStatus::RoundBudget;
        }
        let start = stepper.step_indexed(voc);
        if stepper.instance.len() == start {
            break ChaseStatus::Fixpoint;
        }
        rounds += 1;
        round_ends.push(stepper.instance.len());
        if stepper.instance.len() > config.max_facts {
            break ChaseStatus::FactBudget;
        }
    };
    if S::ENABLED {
        sink.span_close(run_span);
    }
    ChaseResult { instance: stepper.instance, round_ends, rounds, status, stats: stepper.stats }
}

/// Computes `Chaseᵏ(D, T)` exactly (stops early on fixpoint).
pub fn chase_k(
    db: &Instance,
    theory: &Theory,
    voc: &mut Vocabulary,
    k: u32,
) -> ChaseResult {
    chase(db, theory, voc, ChaseConfig { max_rounds: k, max_facts: usize::MAX, ..Default::default() })
}

/// The telemetry-free chase loop `tests/overhead.rs` uses as its
/// wall-clock baseline: the same enumeration / admission / application
/// kernel as [`chase`], driven without the
/// stepper's stats vectors or any [`EventSink`] plumbing. If someone
/// adds always-on telemetry work to the public path, the public
/// Null-sink chase drifts away from this baseline and the overhead
/// guard fails. Not part of the supported API.
#[doc(hidden)]
pub fn chase_uninstrumented_baseline(
    db: &Instance,
    theory: &Theory,
    voc: &mut Vocabulary,
    config: ChaseConfig,
) -> Instance {
    let mut inst = db.clone();
    let templates: Vec<RuleTemplate> = theory.rules.iter().map(RuleTemplate::new).collect();
    let mut fired: FxHashSet<(usize, Key)> = FxHashSet::default();
    let mut delta = 0..db.len();
    let mut first_round = true;
    let mut rounds = 0;
    loop {
        if rounds >= config.max_rounds {
            break;
        }
        let mut work = RoundWork::default();
        let repairs = match config.strategy {
            ChaseStrategy::Naive => collect_repairs_naive::<Null>(
                &inst,
                theory,
                &templates,
                config.variant,
                &mut fired,
                None,
                &mut work,
            ),
            ChaseStrategy::SemiNaive => collect_repairs_seminaive::<Null>(
                &inst,
                theory,
                &templates,
                config.variant,
                &mut fired,
                &inst.facts()[delta.clone()],
                first_round,
                None,
                &mut work,
            ),
        };
        first_round = false;
        let (start, _nulls) = apply_repairs(&mut inst, &templates, voc, repairs, None);
        delta = start..inst.len();
        if delta.is_empty() {
            break;
        }
        rounds += 1;
        if inst.len() > config.max_facts {
            break;
        }
    }
    inst
}

#[cfg(test)]
mod tests {
    use super::*;
    use bddfc_core::parse_program;

    #[test]
    fn chain_grows_one_per_round() {
        // Example 1's first rule alone: an infinite E-chain.
        let prog = parse_program("E(X,Y) -> exists Z . E(Y,Z). E(a,b).").unwrap();
        let mut voc = prog.voc.clone();
        let res = chase(&prog.instance, &prog.theory, &mut voc, ChaseConfig::rounds(10));
        assert_eq!(res.status, ChaseStatus::RoundBudget);
        assert_eq!(res.instance.len(), 11); // E(a,b) + 10 new edges
        assert_eq!(res.max_depth(), 10);
    }

    #[test]
    fn loop_reaches_fixpoint_immediately() {
        let prog = parse_program("E(X,Y) -> exists Z . E(Y,Z). E(a,a).").unwrap();
        let mut voc = prog.voc.clone();
        let res = chase(&prog.instance, &prog.theory, &mut voc, ChaseConfig::default());
        assert!(res.is_fixpoint());
        assert_eq!(res.instance.len(), 1);
        assert_eq!(res.rounds, 0);
    }

    #[test]
    fn restricted_reuses_existing_witness() {
        // b already has a successor, so no null is created for it.
        let prog = parse_program("E(X,Y) -> exists Z . E(Y,Z). E(a,b). E(b,a).").unwrap();
        let mut voc = prog.voc.clone();
        let res = chase(&prog.instance, &prog.theory, &mut voc, ChaseConfig::default());
        assert!(res.is_fixpoint());
        assert_eq!(res.instance.len(), 2);
    }

    #[test]
    fn oblivious_fires_every_trigger() {
        let prog = parse_program("E(X,Y) -> exists Z . E(Y,Z). E(a,b). E(b,a).").unwrap();
        let mut voc = prog.voc.clone();
        let res = chase(
            &prog.instance,
            &prog.theory,
            &mut voc,
            ChaseConfig::rounds(3).with_variant(ChaseVariant::Oblivious),
        );
        // Oblivious chase keeps inventing successors: strictly more facts.
        assert!(res.instance.len() > 2);
        assert_eq!(res.status, ChaseStatus::RoundBudget);
    }

    #[test]
    fn oblivious_does_not_refire_same_trigger() {
        // A single fact with a self-loop: one trigger, fired once.
        let prog = parse_program("E(X,X) -> exists Z . E(X,Z). E(a,a).").unwrap();
        let mut voc = prog.voc.clone();
        let res = chase(
            &prog.instance,
            &prog.theory,
            &mut voc,
            ChaseConfig::rounds(5).with_variant(ChaseVariant::Oblivious),
        );
        assert!(res.is_fixpoint());
        assert_eq!(res.instance.len(), 2); // E(a,a) + E(a,n0)
    }

    #[test]
    fn datalog_transitive_closure() {
        let prog = parse_program(
            "E(X,Y), E(Y,Z) -> E(X,Z). E(a,b). E(b,c). E(c,d).",
        )
        .unwrap();
        let mut voc = prog.voc.clone();
        let res = chase(&prog.instance, &prog.theory, &mut voc, ChaseConfig::default());
        assert!(res.is_fixpoint());
        assert_eq!(res.instance.len(), 6); // 3 base + ac, bd, ad
        assert_eq!(res.instance.domain_size(), 4); // no new elements
    }

    #[test]
    fn depth_tracks_rounds() {
        let prog = parse_program(
            "E(X,Y), E(Y,Z) -> E(X,Z). E(a,b). E(b,c). E(c,d). E(d,e).",
        )
        .unwrap();
        let mut voc = prog.voc.clone();
        let res = chase(&prog.instance, &prog.theory, &mut voc, ChaseConfig::default());
        assert!(res.is_fixpoint());
        // Paths of length 2 and 3 appear in round 1; length 4 in round 2
        // (ae = composition of two round-1 facts).
        assert_eq!(res.max_depth(), 2);
    }

    #[test]
    fn example1_triangle_is_fixpoint_for_first_rule_but_not_theory() {
        // The 3-cycle M' of Example 1 satisfies the successor rule but
        // triggers the triangle rule, and then U-chains diverge.
        let prog = parse_program(
            "E(X,Y) -> exists Z . E(Y,Z).
             E(X,Y), E(Y,Z), E(Z,X) -> exists T . U(X,T).
             U(X,Y) -> exists Z . U(Y,Z).
             E(a,b). E(b,c). E(c,a).",
        )
        .unwrap();
        let mut voc = prog.voc.clone();
        let res = chase(&prog.instance, &prog.theory, &mut voc, ChaseConfig::rounds(8));
        assert_eq!(res.status, ChaseStatus::RoundBudget); // diverges
        let u = voc.find_pred("U").unwrap();
        // Three U-chains (one per triangle vertex), each 8 atoms deep.
        assert_eq!(res.instance.facts_with_pred(u).len(), 3 * 8);
    }

    #[test]
    fn chase_k_matches_paper_notation() {
        let prog = parse_program("E(X,Y) -> exists Z . E(Y,Z). E(a,b).").unwrap();
        let mut voc = prog.voc.clone();
        let res = chase_k(&prog.instance, &prog.theory, &mut voc, 3);
        assert_eq!(res.instance.len(), 4);
        assert_eq!(res.rounds, 3);
    }

    #[test]
    fn fact_budget_stops_run() {
        let prog = parse_program("E(X,Y) -> exists Z . E(Y,Z). E(a,b).").unwrap();
        let mut voc = prog.voc.clone();
        let res = chase(
            &prog.instance,
            &prog.theory,
            &mut voc,
            ChaseConfig { max_rounds: u32::MAX, max_facts: 5, ..Default::default() },
        );
        assert_eq!(res.status, ChaseStatus::FactBudget);
        assert!(res.instance.len() >= 5);
    }

    #[test]
    fn multi_head_tgd_creates_shared_witness() {
        let prog = parse_program("P(X) -> E(X,Z), U(Z). P(a).").unwrap();
        let mut voc = prog.voc.clone();
        let res = chase(&prog.instance, &prog.theory, &mut voc, ChaseConfig::default());
        assert!(res.is_fixpoint());
        let e = voc.find_pred("E").unwrap();
        let u = voc.find_pred("U").unwrap();
        let ef = res.instance.facts_with_pred(e);
        let uf = res.instance.facts_with_pred(u);
        assert_eq!((ef.len(), uf.len()), (1, 1));
        // Same witness in both atoms.
        let w1 = res.instance.fact(ef[0]).args[1];
        let w2 = res.instance.fact(uf[0]).args[0];
        assert_eq!(w1, w2);
    }

    /// Both strategies, both variants: same instance, same null names,
    /// same depths — the in-crate smoke version of tests/differential.rs.
    #[test]
    fn naive_and_seminaive_agree_exactly() {
        let src = "E(X,Y) -> exists Z . E(Y,Z).
                   E(X,Y), E(Y,Z) -> E(X,Z).
                   E(X,Y), E(Y,Z), E(Z,X) -> exists T . U(X,T).
                   E(a,b). E(b,c). E(c,a).";
        for variant in [ChaseVariant::Restricted, ChaseVariant::Oblivious] {
            let prog = parse_program(src).unwrap();
            let mut voc_n = prog.voc.clone();
            let naive = chase(
                &prog.instance,
                &prog.theory,
                &mut voc_n,
                ChaseConfig::rounds(5).with_variant(variant).with_strategy(ChaseStrategy::Naive),
            );
            let mut voc_s = prog.voc.clone();
            let semi = chase(
                &prog.instance,
                &prog.theory,
                &mut voc_s,
                ChaseConfig::rounds(5)
                    .with_variant(variant)
                    .with_strategy(ChaseStrategy::SemiNaive),
            );
            assert_eq!(naive.instance, semi.instance, "{variant:?}");
            assert_eq!(naive.depth_map(), semi.depth_map(), "{variant:?}");
            assert_eq!(naive.rounds, semi.rounds, "{variant:?}");
            assert_eq!(naive.status, semi.status, "{variant:?}");
        }
    }

    /// The batch kernel is a drop-in for the tuple engine: same instance,
    /// same null names, same depths, same ChaseStats — under every
    /// strategy × variant combination.
    #[test]
    fn batch_and_tuple_engines_agree_exactly() {
        let src = "E(X,Y) -> exists Z . E(Y,Z).
                   E(X,Y), E(Y,Z) -> R(X,Z).
                   E(X,Y), E(Y,Z), E(Z,X) -> exists T . U(X,T).
                   U(X,T), E(X,Y) -> U(Y,T).
                   E(a,b). E(b,c). E(c,a). E(c,c).";
        let prog = parse_program(src).unwrap();
        for variant in [ChaseVariant::Restricted, ChaseVariant::Oblivious] {
            for strategy in [ChaseStrategy::SemiNaive, ChaseStrategy::Naive] {
                let config =
                    ChaseConfig::rounds(5).with_variant(variant).with_strategy(strategy);
                let run = |mode| {
                    join::with_join_mode(mode, || {
                        let mut voc = prog.voc.clone();
                        chase(&prog.instance, &prog.theory, &mut voc, config)
                    })
                };
                let tuple = run(JoinMode::Tuple);
                let batch = run(JoinMode::Batch);
                assert_eq!(tuple.instance, batch.instance, "{variant:?} {strategy:?}");
                assert_eq!(tuple.depth_map(), batch.depth_map(), "{variant:?} {strategy:?}");
                assert_eq!(tuple.status, batch.status, "{variant:?} {strategy:?}");
                // Row-combos and homomorphisms are 1:1, so even the
                // work counters agree exactly (wall times excluded).
                assert_eq!(
                    tuple.stats.body_matches_per_round,
                    batch.stats.body_matches_per_round,
                    "{variant:?} {strategy:?}"
                );
            }
        }
    }

    /// The point of semi-naive evaluation: on transitive closure of the
    /// Example 1 chain, re-deriving every round from scratch does at least
    /// twice the body-match work.
    #[test]
    fn seminaive_does_less_work_on_transitive_closure() {
        let n = 24;
        let mut src = String::from("E(X,Y), E(Y,Z) -> E(X,Z).\n");
        for i in 0..n {
            src.push_str(&format!("E(a{i},a{}).\n", i + 1));
        }
        let prog = parse_program(&src).unwrap();
        let run = |strategy| {
            let mut voc = prog.voc.clone();
            chase(
                &prog.instance,
                &prog.theory,
                &mut voc,
                ChaseConfig::default().with_strategy(strategy),
            )
        };
        let naive = run(ChaseStrategy::Naive);
        let semi = run(ChaseStrategy::SemiNaive);
        assert_eq!(naive.instance, semi.instance);
        let (n_work, s_work) =
            (naive.stats.total_body_matches(), semi.stats.total_body_matches());
        assert!(
            n_work >= 2 * s_work,
            "expected ≥2× savings, got naive = {n_work}, semi-naive = {s_work}"
        );
    }

    #[test]
    fn stats_record_one_entry_per_enumeration_round() {
        let prog = parse_program("E(X,Y) -> exists Z . E(Y,Z). E(a,b).").unwrap();
        let mut voc = prog.voc.clone();
        let res = chase(&prog.instance, &prog.theory, &mut voc, ChaseConfig::rounds(4));
        // 4 productive rounds, each enumerating at least one body match.
        assert_eq!(res.stats.body_matches_per_round.len(), 4);
        assert!(res.stats.body_matches_per_round.iter().all(|&m| m > 0));
    }

    #[test]
    fn chase_with_memory_sink_counts_rounds_and_matches_null_run() {
        use bddfc_core::obs::Memory;
        let prog = parse_program("E(X,Y) -> exists Z . E(Y,Z). E(a,b).").unwrap();
        // Pin the batch kernel so the expected event schema is stable
        // whatever the ambient BDDFC_JOIN; the tuple engine's events are
        // pinned separately below.
        let sink = Memory::new(64);
        let mut voc1 = prog.voc.clone();
        let observed = join::with_join_mode(JoinMode::Batch, || {
            chase_with(&prog.instance, &prog.theory, &mut voc1, ChaseConfig::rounds(4), &sink)
        });
        let mut voc2 = prog.voc.clone();
        let plain = chase(&prog.instance, &prog.theory, &mut voc2, ChaseConfig::rounds(4));
        // Attaching a sink never changes the output.
        assert_eq!(observed.instance, plain.instance);
        // One round event, one per-rule trigger event and one join/probe
        // event (the one-atom body is a single segment scan — no hash
        // table is ever built) per round; the chain adds one fact and
        // one null per round, and the counters mirror ChaseStats.
        assert_eq!(
            sink.event_counts(),
            vec![
                (("chase", "round"), 4),
                (("chase", "trigger"), 4),
                (("join", "probe"), 4)
            ]
        );
        assert_eq!(sink.counter("join", "probe", "matches"), 4);
        // The tuple oracle emits hom-engine telemetry instead (the
        // single-atom body joins against an empty residual, so no
        // hom/scan events here).
        let tuple_sink = Memory::new(64);
        let mut voc3 = prog.voc.clone();
        let tuple_run = join::with_join_mode(JoinMode::Tuple, || {
            chase_with(
                &prog.instance,
                &prog.theory,
                &mut voc3,
                ChaseConfig::rounds(4),
                &tuple_sink,
            )
        });
        assert_eq!(tuple_run.instance, plain.instance);
        assert_eq!(
            tuple_sink.event_counts(),
            vec![(("chase", "round"), 4), (("chase", "trigger"), 4)]
        );
        assert_eq!(sink.counter("chase", "round", "new_facts"), 4);
        assert_eq!(sink.counter("chase", "round", "nulls_created"), 4);
        assert_eq!(
            sink.counter("chase", "round", "body_matches"),
            observed.stats.total_body_matches()
        );
        assert_eq!(sink.counter("chase", "round", "triggers_fired"), 4);
        // Per-rule attribution reconciles with the round totals.
        assert_eq!(
            sink.counter("chase", "trigger", "body_matches"),
            observed.stats.total_body_matches()
        );
        assert_eq!(sink.counter("chase", "trigger", "triggers_fired"), 4);
        // One run span enclosing four round spans, ids 1..=5, all closed.
        let spans = sink.spans();
        assert_eq!(spans.len(), 5);
        assert_eq!((spans[0].engine, spans[0].name, spans[0].id), ("chase", "run", 1));
        assert!(spans.iter().all(|s| s.is_closed()));
        for (i, s) in spans[1..].iter().enumerate() {
            assert_eq!((s.name, s.parent, s.key), ("round", 1, Some(("round", i as u64 + 1))));
        }
        // Every event is parented under a round span.
        assert!(sink.events().iter().all(|e| e.parent >= 2));
    }

    #[test]
    fn unbudgeted_run_on_unprovable_theory_emits_a_warning() {
        use bddfc_core::obs::Memory;
        // Not weakly acyclic, but the self-loop witnesses the head, so
        // the restricted chase still reaches a fixpoint immediately.
        let prog = parse_program("E(X,Y) -> exists Z . E(Y,Z). E(a,a).").unwrap();
        let unbudgeted =
            ChaseConfig { max_rounds: u32::MAX, max_facts: usize::MAX, ..Default::default() };
        let sink = Memory::new(64);
        let mut voc = prog.voc.clone();
        let res = chase_with(&prog.instance, &prog.theory, &mut voc, unbudgeted, &sink);
        assert!(res.is_fixpoint());
        let warnings: Vec<_> = sink
            .events()
            .iter()
            .filter(|e| (e.engine, e.name) == ("chase", "warning"))
            .cloned()
            .collect();
        assert_eq!(warnings.len(), 1);
        assert_eq!(warnings[0].key, Some(("rule", 0)));
        assert!(warnings[0].fields.iter().any(|&(k, v)| k == "not_weakly_acyclic" && v == 1));

        // A budgeted run of the same theory stays silent, and so does an
        // unbudgeted run of a weakly acyclic theory.
        let sink2 = Memory::new(64);
        let mut voc2 = prog.voc.clone();
        let _ = chase_with(&prog.instance, &prog.theory, &mut voc2, ChaseConfig::default(), &sink2);
        assert!(sink2.events().iter().all(|e| e.name != "warning"));
        let wa = parse_program("P(X) -> exists Z . E(X,Z). P(a).").unwrap();
        let sink3 = Memory::new(64);
        let mut voc3 = wa.voc.clone();
        let _ = chase_with(&wa.instance, &wa.theory, &mut voc3, unbudgeted, &sink3);
        assert!(sink3.events().iter().all(|e| e.name != "warning"));
    }

    #[test]
    fn stepper_matches_batch_run() {
        let prog = parse_program(
            "E(X,Y) -> exists Z . E(Y,Z). E(X,Y), E(Y,Z) -> R(X,Z). E(a,b).",
        )
        .unwrap();
        let mut voc1 = prog.voc.clone();
        let mut stepper = ChaseStepper::new(
            &prog.instance,
            &prog.theory,
            ChaseVariant::Restricted,
            ChaseStrategy::SemiNaive,
        );
        for _ in 0..6 {
            stepper.step(&mut voc1);
        }
        let mut voc2 = prog.voc.clone();
        let batch = chase(&prog.instance, &prog.theory, &mut voc2, ChaseConfig::rounds(6));
        assert_eq!(stepper.instance, batch.instance);
    }
}
