//! The chase engine, implementing Section 1.1 of the paper.
//!
//! `Chase¹(D,T)` is one *simultaneous* round: for every rule `t` and every
//! frontier tuple `x̄` satisfying the body such that no witness for the
//! head exists (the **non-oblivious** condition — "new elements are only
//! created if needed"), a fresh labelled null `c_{t,x̄}` is created and the
//! head atom added. `Chaseⁱ⁺¹ = Chase¹(Chaseⁱ)` and `Chase = ⋃ᵢ Chaseⁱ`.
//!
//! The engine also provides the *oblivious* chase (fires every trigger
//! regardless of existing witnesses) for the comparisons in Section 1.1's
//! footnote and our benchmarks.
//!
//! ## Evaluation strategy
//!
//! Round `i+1` can only contain a *violated* trigger whose body joins at
//! least one fact created in round `i`: a trigger lying entirely in older
//! facts was already enumerated in round `i` and either repaired (so its
//! head is now witnessed) or skipped because a witness existed (and the
//! chase never deletes facts, so it still exists). The default
//! [`ChaseStrategy::SemiNaive`] exploits this by pinning each body atom to
//! the previous round's delta in turn and completing the join against the
//! full instance — the witness check (`head_satisfied`) always consults
//! the full instance, so the paper's non-oblivious semantics is preserved
//! *exactly*. [`ChaseStrategy::Naive`] re-derives every round from scratch
//! and is kept as the differential-testing oracle; both strategies apply
//! repairs in the same canonical order (rule index, then frontier tuple),
//! so they produce identical instances, null names and depths round by
//! round.

use bddfc_core::fxhash::{FxHashMap, FxHashSet};
use bddfc_core::obs::{Event, EventSink, Null, SpanTimer, NULL};
use bddfc_core::par;
use bddfc_core::satisfaction::{head_satisfied, restrict_binding};
use bddfc_core::{
    hom, Binding, ConstId, Fact, Instance, PredId, Rule, Term, Theory, VarId, Vocabulary,
};
use std::ops::ControlFlow;
use std::time::Duration;

/// Which chase variant to run.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum ChaseVariant {
    /// The paper's chase: create a witness only when none exists.
    #[default]
    Restricted,
    /// Fire every trigger exactly once, regardless of existing witnesses.
    Oblivious,
}

/// How each round's triggers are enumerated. Both strategies compute the
/// same rounds; they differ only in work done (see the module docs).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum ChaseStrategy {
    /// Only enumerate body matches that join at least one fact from the
    /// previous round's delta.
    #[default]
    SemiNaive,
    /// Re-enumerate every body match against the whole instance, every
    /// round. The differential-testing oracle.
    Naive,
}

/// Resource limits for a chase run. The chase of a Datalog∃ program need
/// not terminate (Example 1), so every entry point takes a budget.
#[derive(Clone, Copy, Debug)]
pub struct ChaseConfig {
    /// Maximum number of `Chase¹` rounds.
    pub max_rounds: u32,
    /// Maximum number of facts; the run stops after the round that exceeds it.
    pub max_facts: usize,
    /// Chase variant.
    pub variant: ChaseVariant,
    /// Trigger enumeration strategy.
    pub strategy: ChaseStrategy,
}

impl Default for ChaseConfig {
    fn default() -> Self {
        ChaseConfig {
            max_rounds: 64,
            max_facts: 1_000_000,
            variant: ChaseVariant::Restricted,
            strategy: ChaseStrategy::SemiNaive,
        }
    }
}

impl ChaseConfig {
    /// A config bounded only by the number of rounds (`Chaseᵏ`).
    pub fn rounds(k: u32) -> Self {
        ChaseConfig { max_rounds: k, ..Default::default() }
    }

    /// Sets the variant.
    pub fn with_variant(mut self, v: ChaseVariant) -> Self {
        self.variant = v;
        self
    }

    /// Sets the evaluation strategy.
    pub fn with_strategy(mut self, s: ChaseStrategy) -> Self {
        self.strategy = s;
        self
    }

    /// Sets the fact budget.
    pub fn with_max_facts(mut self, n: usize) -> Self {
        self.max_facts = n;
        self
    }
}

/// Why a chase run stopped.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ChaseStatus {
    /// A fixpoint was reached: the result models the theory.
    Fixpoint,
    /// The round budget was exhausted before reaching a fixpoint.
    RoundBudget,
    /// The fact budget was exhausted before reaching a fixpoint.
    FactBudget,
}

/// Work counters for a chase run — the trigger counter the benchmarks
/// compare across strategies.
///
/// **Deprecation note:** these ad-hoc fields predate the unified
/// telemetry layer and are subsumed by the per-round `chase`/`round`
/// events emitted into any [`EventSink`] (see [`chase_with`] and
/// [`bddfc_core::obs`]), which additionally report candidates, witness
/// checks, triggers pruned and nulls created. The fields are kept for
/// the existing work-ratio assertions; new instrumentation should
/// attach a sink instead of growing this struct.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ChaseStats {
    /// Completed body homomorphisms enumerated in each round (including
    /// the final, empty round that certifies a fixpoint).
    pub body_matches_per_round: Vec<u64>,
    /// Wall-clock time of each round (enumeration + repair application),
    /// aligned with [`ChaseStats::body_matches_per_round`].
    pub round_wall_times: Vec<Duration>,
    /// Worker-thread count the run was configured with (see
    /// [`bddfc_core::par::num_threads`]); purely informational — outputs
    /// are identical at any thread count.
    pub threads_used: usize,
}

impl ChaseStats {
    /// Total body-match attempts across all rounds.
    pub fn total_body_matches(&self) -> u64 {
        self.body_matches_per_round.iter().sum()
    }

    /// Total wall-clock time across all rounds.
    pub fn total_wall_time(&self) -> Duration {
        self.round_wall_times.iter().sum()
    }
}

/// The result of a chase run.
#[derive(Clone, Debug)]
pub struct ChaseResult {
    /// The (partially) chased instance.
    pub instance: Instance,
    /// Derivation depth of every fact: the round at which it appeared
    /// (`0` for the facts of `D`). This is the depth the BDD property
    /// (Section 1.1) quantifies over.
    pub depth: FxHashMap<Fact, u32>,
    /// Number of completed rounds.
    pub rounds: u32,
    /// Why the run stopped.
    pub status: ChaseStatus,
    /// Work counters (see [`ChaseStats`]).
    pub stats: ChaseStats,
}

impl ChaseResult {
    /// Did the chase terminate (so `instance ⊨ T`)?
    pub fn is_fixpoint(&self) -> bool {
        self.status == ChaseStatus::Fixpoint
    }

    /// The maximal derivation depth of any fact.
    pub fn max_depth(&self) -> u32 {
        self.depth.values().copied().max().unwrap_or(0)
    }
}

/// One pending repair: a rule index plus the frontier tuple and binding to
/// repair. The `(rule_idx, key)` pair identifies the paper's trigger
/// `(t, x̄)` and fixes the canonical application order.
struct Repair {
    rule_idx: usize,
    key: Vec<ConstId>,
    binding: Binding,
}

/// One candidate trigger emitted by the parallel enumeration phase: the
/// canonical key plus the frontier-restricted binding. Deduplication and
/// admission run later, sequentially, on the merged list — the
/// frontier-restricted binding of a trigger is a function of its key, so
/// first-occurrence dedup yields identical values at any shard split.
struct Candidate {
    rule_idx: usize,
    key: Vec<ConstId>,
    binding: Binding,
}

/// Per-rule attribution counters for one round, filled only when a
/// recording sink is installed (`S::ENABLED`); each becomes one
/// `chase`/`trigger` event keyed by rule index.
#[derive(Clone, Copy, Default)]
struct RuleWork {
    /// Completed body homomorphisms of this rule.
    body_matches: u64,
    /// Deduplicated candidate triggers of this rule reaching admission.
    candidates: u64,
    /// Repairs of this rule that actually fired.
    triggers_fired: u64,
    /// Wall time spent enumerating this rule's body joins (a gauge).
    enum_ns: u64,
}

/// Per-round work counters accumulated by the enumeration and admission
/// phases; the deterministic *fields* of the round's telemetry event.
#[derive(Default)]
struct RoundWork {
    /// Completed body homomorphisms enumerated.
    body_matches: u64,
    /// Deduplicated candidate triggers reaching admission.
    candidates: u64,
    /// Candidates whose head was actually joined against the instance
    /// (`head_satisfied`) — all of them under Restricted, only datalog
    /// rules under Oblivious.
    witness_checks: u64,
    /// Per-rule attribution, indexed by rule; **empty** when telemetry
    /// is disabled (the collectors size it iff `S::ENABLED`).
    rule_work: Vec<RuleWork>,
    /// Per-predicate hom candidate-scan attribution (empty when
    /// telemetry is disabled).
    scans: hom::ScanStats,
}

impl RoundWork {
    /// Whether per-rule attribution is being collected this round.
    fn tracking(&self) -> bool {
        !self.rule_work.is_empty()
    }
}

/// Applies the Restricted/Oblivious admission check to the deduplicated
/// candidate triggers, in their merged (shard-boundary-independent)
/// order. Witness checks (`head_satisfied`) are read-only joins against
/// the frozen instance and run in parallel; the `fired` bookkeeping of
/// the oblivious variant mutates shared state and stays sequential.
fn admit_candidates(
    inst: &Instance,
    theory: &Theory,
    variant: ChaseVariant,
    fired: &mut FxHashSet<(usize, Vec<ConstId>)>,
    cands: Vec<Candidate>,
    work: &mut RoundWork,
) -> Vec<Repair> {
    work.candidates += cands.len() as u64;
    work.witness_checks += match variant {
        ChaseVariant::Restricted => cands.len() as u64,
        ChaseVariant::Oblivious => {
            cands.iter().filter(|c| theory.rules[c.rule_idx].is_datalog()).count() as u64
        }
    };
    // unwitnessed[i]: candidate i's head has no witness in the frozen
    // instance (only consulted where the variant cares).
    let unwitnessed: Vec<bool> = par::par_map(&cands, |c| {
        let rule = &theory.rules[c.rule_idx];
        match variant {
            ChaseVariant::Restricted => !head_satisfied(inst, rule, &c.binding),
            // Datalog rules are idempotent; skip if the head is present.
            ChaseVariant::Oblivious => {
                rule.is_datalog() && !head_satisfied(inst, rule, &c.binding)
            }
        }
    });
    if work.tracking() {
        for c in &cands {
            work.rule_work[c.rule_idx].candidates += 1;
        }
    }
    let mut out = Vec::new();
    for (c, unwit) in cands.into_iter().zip(unwitnessed) {
        let fire = match variant {
            ChaseVariant::Restricted => unwit,
            ChaseVariant::Oblivious => {
                if theory.rules[c.rule_idx].is_datalog() {
                    unwit
                } else {
                    fired.insert((c.rule_idx, c.key.clone()))
                }
            }
        };
        if fire {
            if work.tracking() {
                work.rule_work[c.rule_idx].triggers_fired += 1;
            }
            out.push(Repair { rule_idx: c.rule_idx, key: c.key, binding: c.binding });
        }
    }
    out
}

/// The sorted frontier of a rule (the variables a trigger key ranges over).
fn sorted_frontier(rule: &Rule) -> Vec<VarId> {
    let mut frontier: Vec<VarId> = rule.frontier().into_iter().collect();
    frontier.sort_unstable();
    frontier
}

/// Enumerates one rule's body homomorphisms over the whole instance,
/// deduplicating by frontier key. Read-only: safe as a parallel work
/// item. When `scans` is given, candidate-list walks are charged to
/// their predicates for `hom/scan` attribution.
fn enumerate_rule_naive(
    inst: &Instance,
    theory: &Theory,
    rule_idx: usize,
    scans: Option<&mut hom::ScanStats>,
) -> (Vec<Candidate>, u64) {
    let rule = &theory.rules[rule_idx];
    let frontier = sorted_frontier(rule);
    let mut seen: FxHashSet<Vec<ConstId>> = FxHashSet::default();
    let mut out = Vec::new();
    let mut matches = 0u64;
    let mut visit = |b: &Binding| {
        matches += 1;
        let key: Vec<ConstId> = frontier.iter().map(|v| b[v]).collect();
        if seen.insert(key.clone()) {
            let binding = restrict_binding(b, &frontier);
            out.push(Candidate { rule_idx, key, binding });
        }
        ControlFlow::Continue(())
    };
    let _ = match scans {
        Some(s) => {
            hom::for_each_hom_scanned(inst, &rule.body, &Binding::default(), s, &mut visit)
        }
        None => hom::for_each_hom(inst, &rule.body, &Binding::default(), &mut visit),
    };
    (out, matches)
}

/// Collects this round's repairs against the *frozen* instance by full
/// re-enumeration, per the simultaneous semantics of `Chase¹`. Rules are
/// independent work items and enumerate in parallel; admission runs on
/// the merged candidate list. Generic over the sink *type* only: with
/// `S::ENABLED == false` (the `Null` sink) every attribution branch is
/// statically eliminated and the kernel is the PR-3 one.
fn collect_repairs_naive<S: EventSink>(
    inst: &Instance,
    theory: &Theory,
    variant: ChaseVariant,
    fired: &mut FxHashSet<(usize, Vec<ConstId>)>,
    work: &mut RoundWork,
) -> Vec<Repair> {
    if S::ENABLED && work.rule_work.is_empty() {
        work.rule_work = vec![RuleWork::default(); theory.rules.len()];
    }
    let per_rule: Vec<(Vec<Candidate>, u64, u64, hom::ScanStats)> =
        par::par_chunks(theory.rules.len(), |range| {
            range
                .map(|rule_idx| {
                    if S::ENABLED {
                        let timer = SpanTimer::start();
                        let mut scans = hom::ScanStats::default();
                        let (c, m) =
                            enumerate_rule_naive(inst, theory, rule_idx, Some(&mut scans));
                        (c, m, timer.elapsed_ns(), scans)
                    } else {
                        let (c, m) = enumerate_rule_naive(inst, theory, rule_idx, None);
                        (c, m, 0, hom::ScanStats::default())
                    }
                })
                .collect::<Vec<_>>()
        })
        .into_iter()
        .flatten()
        .collect();
    let mut cands = Vec::new();
    for (rule_idx, (rule_cands, matches, enum_ns, scans)) in per_rule.into_iter().enumerate() {
        work.body_matches += matches;
        if S::ENABLED {
            work.rule_work[rule_idx].body_matches += matches;
            work.rule_work[rule_idx].enum_ns += enum_ns;
            work.scans.merge(&scans);
        }
        cands.extend(rule_cands);
    }
    admit_candidates(inst, theory, variant, fired, cands, work)
}

/// Attempts to bind `atom` against the ground `fact`; returns the binding
/// of the atom's variables, or `None` on clash.
fn bind_atom(atom: &bddfc_core::Atom, fact: &Fact) -> Option<Binding> {
    let mut binding = Binding::default();
    for (term, &c) in atom.args.iter().zip(fact.args.iter()) {
        match term {
            Term::Const(k) => {
                if *k != c {
                    return None;
                }
            }
            Term::Var(v) => match binding.get(v) {
                Some(&b) if b != c => return None,
                _ => {
                    binding.insert(*v, c);
                }
            },
        }
    }
    Some(binding)
}

/// Collects this round's repairs semi-naively: only body matches that use
/// at least one fact of `delta` (the previous round's new facts) are
/// enumerated, by pinning each body atom to delta facts in turn and
/// completing the join against the full frozen instance. Witness checks
/// also consult the full instance. `first_round` makes body-less rules
/// (which join nothing) fire on the opening round.
fn collect_repairs_seminaive<S: EventSink>(
    inst: &Instance,
    theory: &Theory,
    variant: ChaseVariant,
    fired: &mut FxHashSet<(usize, Vec<ConstId>)>,
    delta: &[Fact],
    first_round: bool,
    work: &mut RoundWork,
) -> Vec<Repair> {
    if S::ENABLED && work.rule_work.is_empty() {
        work.rule_work = vec![RuleWork::default(); theory.rules.len()];
    }
    let mut delta_by_pred: FxHashMap<PredId, Vec<&Fact>> = FxHashMap::default();
    for f in delta {
        delta_by_pred.entry(f.pred).or_default().push(f);
    }
    // A `(rule, pinned atom, delta fact)` join is an independent, read-only
    // work item. Flatten them in the canonical (rule, pin, delta-order)
    // nesting so the merged candidate stream is the sequential one.
    struct Work<'a> {
        rule_idx: usize,
        pin: usize,
        dfact: &'a Fact,
    }
    // Per-shard attribution (rule wall/matches + predicate scans),
    // merged sequentially; `None` when telemetry is disabled.
    struct ShardAttr {
        rule_matches: Vec<u64>,
        rule_ns: Vec<u64>,
        scans: hom::ScanStats,
    }
    let frontiers: Vec<Vec<VarId>> = theory.rules.iter().map(sorted_frontier).collect();
    let mut cands: Vec<Candidate> = Vec::new();
    let mut items: Vec<Work> = Vec::new();
    for (rule_idx, rule) in theory.rules.iter().enumerate() {
        if rule.body.is_empty() {
            // A body-less rule has the single empty trigger; it cannot join
            // a delta, so it is only ever *new* on the opening round.
            if first_round {
                work.body_matches += 1;
                if S::ENABLED {
                    work.rule_work[rule_idx].body_matches += 1;
                }
                cands.push(Candidate {
                    rule_idx,
                    key: Vec::new(),
                    binding: Binding::default(),
                });
            }
            continue;
        }
        for pin in 0..rule.body.len() {
            let Some(dfacts) = delta_by_pred.get(&rule.body[pin].pred) else { continue };
            items.extend(dfacts.iter().map(|&dfact| Work { rule_idx, pin, dfact }));
        }
    }
    // The pinned atom's residual body, per (rule, pin), shared read-only
    // across shards.
    let rests: Vec<Vec<Vec<bddfc_core::Atom>>> = theory
        .rules
        .iter()
        .map(|rule| {
            (0..rule.body.len())
                .map(|pin| {
                    rule.body
                        .iter()
                        .enumerate()
                        .filter(|(i, _)| *i != pin)
                        .map(|(_, a)| a.clone())
                        .collect()
                })
                .collect()
        })
        .collect();
    // Phase 1 (parallel): complete each pinned join against the frozen
    // instance; every shard emits candidates in work-list order.
    let shard_out: Vec<(Vec<Candidate>, u64, Option<ShardAttr>)> =
        par::par_chunks(items.len(), |range| {
            let mut out = Vec::new();
            let mut matches = 0u64;
            let mut attr = if S::ENABLED {
                Some(ShardAttr {
                    rule_matches: vec![0; theory.rules.len()],
                    rule_ns: vec![0; theory.rules.len()],
                    scans: hom::ScanStats::default(),
                })
            } else {
                None
            };
            for w in &items[range] {
                let rule = &theory.rules[w.rule_idx];
                let Some(binding) = bind_atom(&rule.body[w.pin], w.dfact) else { continue };
                let frontier = &frontiers[w.rule_idx];
                let before = matches;
                let mut visit = |b: &Binding| {
                    matches += 1;
                    let key: Vec<ConstId> = frontier.iter().map(|v| b[v]).collect();
                    let binding = restrict_binding(b, frontier);
                    out.push(Candidate { rule_idx: w.rule_idx, key, binding });
                    ControlFlow::Continue(())
                };
                match attr.as_mut() {
                    Some(a) => {
                        let timer = SpanTimer::start();
                        let _ = hom::for_each_hom_scanned(
                            inst,
                            &rests[w.rule_idx][w.pin],
                            &binding,
                            &mut a.scans,
                            &mut visit,
                        );
                        a.rule_ns[w.rule_idx] += timer.elapsed_ns();
                        a.rule_matches[w.rule_idx] += matches - before;
                    }
                    None => {
                        let _ = hom::for_each_hom(
                            inst,
                            &rests[w.rule_idx][w.pin],
                            &binding,
                            &mut visit,
                        );
                    }
                }
            }
            (out, matches, attr)
        });
    // Phase 2 (sequential): merge in input order, dedup per (rule, key) —
    // first occurrence wins, and its restricted binding is determined by
    // the key, so the surviving set is shard-split-independent.
    let mut seen: FxHashSet<(usize, Vec<ConstId>)> = FxHashSet::default();
    for (shard, matches, attr) in shard_out {
        work.body_matches += matches;
        if let Some(a) = attr {
            for (rw, (&m, &ns)) in
                work.rule_work.iter_mut().zip(a.rule_matches.iter().zip(&a.rule_ns))
            {
                rw.body_matches += m;
                rw.enum_ns += ns;
            }
            work.scans.merge(&a.scans);
        }
        for c in shard {
            if seen.insert((c.rule_idx, c.key.clone())) {
                cands.push(c);
            }
        }
    }
    admit_candidates(inst, theory, variant, fired, cands, work)
}

/// Applies a repair: grounds the head, inventing one fresh null per
/// existential variable (the paper's `c_{t,x̄}`). Returns the new facts
/// and the number of nulls invented.
fn apply_repair(rule: &Rule, binding: &Binding, voc: &mut Vocabulary) -> (Vec<Fact>, u64) {
    let mut ext = binding.clone();
    let mut ex: Vec<VarId> = rule.existential_vars().into_iter().collect();
    ex.sort_unstable();
    let nulls = ex.len() as u64;
    for v in ex {
        ext.insert(v, voc.fresh_null("n"));
    }
    let facts = rule
        .head
        .iter()
        .map(|atom| {
            let grounded = atom.apply(&|v| ext.get(&v).map(|&c| Term::Const(c)));
            grounded.to_fact().expect("head fully grounded by repair")
        })
        .collect();
    (facts, nulls)
}

/// Applies repairs in the canonical `(rule, frontier tuple)` order — the
/// order both strategies share, so fresh-null naming is reproducible and
/// strategy-independent. Returns the new facts and the number of fresh
/// nulls invented.
fn apply_repairs(
    inst: &mut Instance,
    theory: &Theory,
    voc: &mut Vocabulary,
    mut repairs: Vec<Repair>,
) -> (Vec<Fact>, u64) {
    repairs.sort_by(|a, b| (a.rule_idx, &a.key).cmp(&(b.rule_idx, &b.key)));
    let mut new_facts = Vec::new();
    let mut nulls_created = 0u64;
    for repair in repairs {
        let (facts, nulls) = apply_repair(&theory.rules[repair.rule_idx], &repair.binding, voc);
        nulls_created += nulls;
        for fact in facts {
            if inst.insert(fact.clone()) {
                new_facts.push(fact);
            }
        }
    }
    (new_facts, nulls_created)
}

/// Runs one naive `Chase¹` round: one simultaneous round, enumerated
/// against the whole instance. Returns the new facts; the instance is
/// mutated in place. This is the one-shot oracle API — budgeted runs
/// should go through [`chase`] or [`ChaseStepper`].
pub fn chase_round(
    inst: &mut Instance,
    theory: &Theory,
    voc: &mut Vocabulary,
    variant: ChaseVariant,
    fired: &mut FxHashSet<(usize, Vec<ConstId>)>,
) -> Vec<Fact> {
    let mut work = RoundWork::default();
    let repairs = collect_repairs_naive::<Null>(inst, theory, variant, fired, &mut work);
    apply_repairs(inst, theory, voc, repairs).0
}

/// A resumable round-by-round chase driver: owns the growing instance,
/// the previous round's delta and the work counters, so callers (like the
/// certain-answer loop) can interleave their own checks between rounds
/// while still getting semi-naive evaluation.
///
/// The driver is generic over an [`EventSink`]; the default [`Null`]
/// sink compiles the telemetry away entirely (see [`bddfc_core::obs`]).
/// Each completed [`ChaseStepper::step`] emits one `chase`/`round`
/// event whose fields are round, body_matches, candidates,
/// witness_checks, triggers_fired, triggers_pruned, new_facts,
/// nulls_created and facts_total, with wall_ns/threads gauges.
pub struct ChaseStepper<'t, S: EventSink = Null> {
    theory: &'t Theory,
    /// The instance chased so far.
    pub instance: Instance,
    variant: ChaseVariant,
    strategy: ChaseStrategy,
    fired: FxHashSet<(usize, Vec<ConstId>)>,
    delta: Vec<Fact>,
    first_round: bool,
    rounds_done: u64,
    sink: &'t S,
    parent_span: u64,
    /// Work counters, one entry per completed [`ChaseStepper::step`].
    pub stats: ChaseStats,
}

impl<'t> ChaseStepper<'t, Null> {
    /// Starts a chase of `db` under `theory` with telemetry disabled.
    pub fn new(
        db: &Instance,
        theory: &'t Theory,
        variant: ChaseVariant,
        strategy: ChaseStrategy,
    ) -> Self {
        ChaseStepper::with_sink(db, theory, variant, strategy, &NULL)
    }
}

impl<'t, S: EventSink> ChaseStepper<'t, S> {
    /// Starts a chase of `db` under `theory`, reporting per-round
    /// telemetry into `sink`.
    pub fn with_sink(
        db: &Instance,
        theory: &'t Theory,
        variant: ChaseVariant,
        strategy: ChaseStrategy,
        sink: &'t S,
    ) -> Self {
        ChaseStepper {
            theory,
            instance: db.clone(),
            variant,
            strategy,
            fired: FxHashSet::default(),
            delta: db.facts().to_vec(),
            first_round: true,
            rounds_done: 0,
            sink,
            parent_span: 0,
            stats: ChaseStats { threads_used: par::num_threads(), ..ChaseStats::default() },
        }
    }

    /// Parents every span and event this stepper emits under `span`
    /// (typically a `chase`/`run` span the caller opened on the same
    /// sink). 0 — the default — means "no enclosing span".
    pub fn under_span(mut self, span: u64) -> Self {
        self.parent_span = span;
        self
    }

    /// Runs one `Chase¹` round; returns the facts it added (empty iff the
    /// instance reached a fixpoint of the theory).
    ///
    /// With a recording sink, each round opens a `chase`/`round` span
    /// (keyed by round number) under which it emits one `chase`/`trigger`
    /// event per active rule (keyed by rule index), one `hom`/`scan`
    /// event per scanned predicate (keyed by predicate id) and the
    /// round summary event.
    pub fn step(&mut self, voc: &mut Vocabulary) -> Vec<Fact> {
        let timer = SpanTimer::start();
        let round_span = if S::ENABLED {
            self.sink.span_open(
                "chase",
                "round",
                self.parent_span,
                Some(("round", self.rounds_done + 1)),
            )
        } else {
            0
        };
        let mut work = RoundWork::default();
        let repairs = match self.strategy {
            ChaseStrategy::Naive => collect_repairs_naive::<S>(
                &self.instance,
                self.theory,
                self.variant,
                &mut self.fired,
                &mut work,
            ),
            ChaseStrategy::SemiNaive => collect_repairs_seminaive::<S>(
                &self.instance,
                self.theory,
                self.variant,
                &mut self.fired,
                &self.delta,
                self.first_round,
                &mut work,
            ),
        };
        self.first_round = false;
        let triggers_fired = repairs.len() as u64;
        self.stats.body_matches_per_round.push(work.body_matches);
        let (new_facts, nulls_created) =
            apply_repairs(&mut self.instance, self.theory, voc, repairs);
        self.delta = new_facts.clone();
        let wall = timer.elapsed();
        self.stats.round_wall_times.push(wall);
        self.rounds_done += 1;
        if S::ENABLED {
            for (rule_idx, rw) in work.rule_work.iter().enumerate() {
                if rw.body_matches == 0 && rw.candidates == 0 && rw.triggers_fired == 0 {
                    continue;
                }
                self.sink.record(Event {
                    engine: "chase",
                    name: "trigger",
                    parent: round_span,
                    key: Some(("rule", rule_idx as u64)),
                    fields: &[
                        ("body_matches", rw.body_matches),
                        ("candidates", rw.candidates),
                        ("triggers_fired", rw.triggers_fired),
                    ],
                    gauges: &[("wall_ns", rw.enum_ns)],
                });
            }
            for (pred, scans, candidates) in work.scans.sorted() {
                self.sink.record(Event {
                    engine: "hom",
                    name: "scan",
                    parent: round_span,
                    key: Some(("pred", u64::from(pred.0))),
                    fields: &[("scans", scans), ("candidates", candidates)],
                    gauges: &[],
                });
            }
            self.sink.record(Event {
                engine: "chase",
                name: "round",
                parent: round_span,
                key: None,
                fields: &[
                    ("round", self.rounds_done),
                    ("body_matches", work.body_matches),
                    ("candidates", work.candidates),
                    ("witness_checks", work.witness_checks),
                    ("triggers_fired", triggers_fired),
                    ("triggers_pruned", work.candidates - triggers_fired),
                    ("new_facts", new_facts.len() as u64),
                    ("nulls_created", nulls_created),
                    ("facts_total", self.instance.len() as u64),
                ],
                gauges: &[
                    ("wall_ns", u64::try_from(wall.as_nanos()).unwrap_or(u64::MAX)),
                    ("threads", par::num_threads() as u64),
                ],
            });
            self.sink.span_close(round_span);
        }
        new_facts
    }
}

/// Runs the chase of `db` under `theory` within the given budget.
pub fn chase(
    db: &Instance,
    theory: &Theory,
    voc: &mut Vocabulary,
    config: ChaseConfig,
) -> ChaseResult {
    chase_with(db, theory, voc, config, &NULL)
}

/// Like [`chase`], but reports per-round telemetry into `sink` (one
/// `chase`/`round` span + event per completed [`ChaseStepper::step`],
/// all nested under one `chase`/`run` span).
pub fn chase_with<S: EventSink>(
    db: &Instance,
    theory: &Theory,
    voc: &mut Vocabulary,
    config: ChaseConfig,
    sink: &S,
) -> ChaseResult {
    let run_span = if S::ENABLED { sink.span_open("chase", "run", 0, None) } else { 0 };
    // A run with no finite budget at all only terminates if the chase
    // does; when the position dependency graph has a special-edge cycle
    // that cannot be proven, so say so up front (`bddfc-lint` reports the
    // same finding as B103, with the full cycle witness).
    if S::ENABLED && config.max_rounds == u32::MAX && config.max_facts == usize::MAX {
        if let Some(cycle) = bddfc_core::posgraph::PosGraph::new(theory).special_cycle() {
            sink.record(Event {
                engine: "chase",
                name: "warning",
                parent: run_span,
                key: Some(("rule", cycle[0].rule as u64)),
                fields: &[
                    ("not_weakly_acyclic", 1),
                    ("cycle_edges", cycle.len() as u64),
                ],
                gauges: &[],
            });
        }
    }
    let mut stepper =
        ChaseStepper::with_sink(db, theory, config.variant, config.strategy, sink)
            .under_span(run_span);
    let mut depth: FxHashMap<Fact, u32> = db.facts().iter().map(|f| (f.clone(), 0)).collect();
    let mut rounds = 0;
    let status = loop {
        if rounds >= config.max_rounds {
            break ChaseStatus::RoundBudget;
        }
        let new_facts = stepper.step(voc);
        if new_facts.is_empty() {
            break ChaseStatus::Fixpoint;
        }
        rounds += 1;
        for f in new_facts {
            depth.entry(f).or_insert(rounds);
        }
        if stepper.instance.len() > config.max_facts {
            break ChaseStatus::FactBudget;
        }
    };
    if S::ENABLED {
        sink.span_close(run_span);
    }
    ChaseResult { instance: stepper.instance, depth, rounds, status, stats: stepper.stats }
}

/// Computes `Chaseᵏ(D, T)` exactly (stops early on fixpoint).
pub fn chase_k(
    db: &Instance,
    theory: &Theory,
    voc: &mut Vocabulary,
    k: u32,
) -> ChaseResult {
    chase(db, theory, voc, ChaseConfig { max_rounds: k, max_facts: usize::MAX, ..Default::default() })
}

/// The telemetry-free chase loop `tests/overhead.rs` uses as its
/// wall-clock baseline: the same enumeration / admission / application
/// kernel and depth bookkeeping as [`chase`], driven without the
/// stepper's stats vectors or any [`EventSink`] plumbing. If someone
/// adds always-on telemetry work to the public path, the public
/// Null-sink chase drifts away from this baseline and the overhead
/// guard fails. Not part of the supported API.
#[doc(hidden)]
pub fn chase_uninstrumented_baseline(
    db: &Instance,
    theory: &Theory,
    voc: &mut Vocabulary,
    config: ChaseConfig,
) -> Instance {
    let mut inst = db.clone();
    let mut fired: FxHashSet<(usize, Vec<ConstId>)> = FxHashSet::default();
    let mut delta = db.facts().to_vec();
    let mut first_round = true;
    let mut depth: FxHashMap<Fact, u32> = db.facts().iter().map(|f| (f.clone(), 0)).collect();
    let mut rounds = 0;
    loop {
        if rounds >= config.max_rounds {
            break;
        }
        let mut work = RoundWork::default();
        let repairs = match config.strategy {
            ChaseStrategy::Naive => {
                collect_repairs_naive::<Null>(&inst, theory, config.variant, &mut fired, &mut work)
            }
            ChaseStrategy::SemiNaive => collect_repairs_seminaive::<Null>(
                &inst,
                theory,
                config.variant,
                &mut fired,
                &delta,
                first_round,
                &mut work,
            ),
        };
        first_round = false;
        let (new_facts, _nulls) = apply_repairs(&mut inst, theory, voc, repairs);
        delta = new_facts.clone();
        if new_facts.is_empty() {
            break;
        }
        rounds += 1;
        for f in new_facts {
            depth.entry(f).or_insert(rounds);
        }
        if inst.len() > config.max_facts {
            break;
        }
    }
    inst
}

#[cfg(test)]
mod tests {
    use super::*;
    use bddfc_core::parse_program;

    #[test]
    fn chain_grows_one_per_round() {
        // Example 1's first rule alone: an infinite E-chain.
        let prog = parse_program("E(X,Y) -> exists Z . E(Y,Z). E(a,b).").unwrap();
        let mut voc = prog.voc.clone();
        let res = chase(&prog.instance, &prog.theory, &mut voc, ChaseConfig::rounds(10));
        assert_eq!(res.status, ChaseStatus::RoundBudget);
        assert_eq!(res.instance.len(), 11); // E(a,b) + 10 new edges
        assert_eq!(res.max_depth(), 10);
    }

    #[test]
    fn loop_reaches_fixpoint_immediately() {
        let prog = parse_program("E(X,Y) -> exists Z . E(Y,Z). E(a,a).").unwrap();
        let mut voc = prog.voc.clone();
        let res = chase(&prog.instance, &prog.theory, &mut voc, ChaseConfig::default());
        assert!(res.is_fixpoint());
        assert_eq!(res.instance.len(), 1);
        assert_eq!(res.rounds, 0);
    }

    #[test]
    fn restricted_reuses_existing_witness() {
        // b already has a successor, so no null is created for it.
        let prog = parse_program("E(X,Y) -> exists Z . E(Y,Z). E(a,b). E(b,a).").unwrap();
        let mut voc = prog.voc.clone();
        let res = chase(&prog.instance, &prog.theory, &mut voc, ChaseConfig::default());
        assert!(res.is_fixpoint());
        assert_eq!(res.instance.len(), 2);
    }

    #[test]
    fn oblivious_fires_every_trigger() {
        let prog = parse_program("E(X,Y) -> exists Z . E(Y,Z). E(a,b). E(b,a).").unwrap();
        let mut voc = prog.voc.clone();
        let res = chase(
            &prog.instance,
            &prog.theory,
            &mut voc,
            ChaseConfig::rounds(3).with_variant(ChaseVariant::Oblivious),
        );
        // Oblivious chase keeps inventing successors: strictly more facts.
        assert!(res.instance.len() > 2);
        assert_eq!(res.status, ChaseStatus::RoundBudget);
    }

    #[test]
    fn oblivious_does_not_refire_same_trigger() {
        // A single fact with a self-loop: one trigger, fired once.
        let prog = parse_program("E(X,X) -> exists Z . E(X,Z). E(a,a).").unwrap();
        let mut voc = prog.voc.clone();
        let res = chase(
            &prog.instance,
            &prog.theory,
            &mut voc,
            ChaseConfig::rounds(5).with_variant(ChaseVariant::Oblivious),
        );
        assert!(res.is_fixpoint());
        assert_eq!(res.instance.len(), 2); // E(a,a) + E(a,n0)
    }

    #[test]
    fn datalog_transitive_closure() {
        let prog = parse_program(
            "E(X,Y), E(Y,Z) -> E(X,Z). E(a,b). E(b,c). E(c,d).",
        )
        .unwrap();
        let mut voc = prog.voc.clone();
        let res = chase(&prog.instance, &prog.theory, &mut voc, ChaseConfig::default());
        assert!(res.is_fixpoint());
        assert_eq!(res.instance.len(), 6); // 3 base + ac, bd, ad
        assert_eq!(res.instance.domain_size(), 4); // no new elements
    }

    #[test]
    fn depth_tracks_rounds() {
        let prog = parse_program(
            "E(X,Y), E(Y,Z) -> E(X,Z). E(a,b). E(b,c). E(c,d). E(d,e).",
        )
        .unwrap();
        let mut voc = prog.voc.clone();
        let res = chase(&prog.instance, &prog.theory, &mut voc, ChaseConfig::default());
        assert!(res.is_fixpoint());
        // Paths of length 2 and 3 appear in round 1; length 4 in round 2
        // (ae = composition of two round-1 facts).
        assert_eq!(res.max_depth(), 2);
    }

    #[test]
    fn example1_triangle_is_fixpoint_for_first_rule_but_not_theory() {
        // The 3-cycle M' of Example 1 satisfies the successor rule but
        // triggers the triangle rule, and then U-chains diverge.
        let prog = parse_program(
            "E(X,Y) -> exists Z . E(Y,Z).
             E(X,Y), E(Y,Z), E(Z,X) -> exists T . U(X,T).
             U(X,Y) -> exists Z . U(Y,Z).
             E(a,b). E(b,c). E(c,a).",
        )
        .unwrap();
        let mut voc = prog.voc.clone();
        let res = chase(&prog.instance, &prog.theory, &mut voc, ChaseConfig::rounds(8));
        assert_eq!(res.status, ChaseStatus::RoundBudget); // diverges
        let u = voc.find_pred("U").unwrap();
        // Three U-chains (one per triangle vertex), each 8 atoms deep.
        assert_eq!(res.instance.facts_with_pred(u).len(), 3 * 8);
    }

    #[test]
    fn chase_k_matches_paper_notation() {
        let prog = parse_program("E(X,Y) -> exists Z . E(Y,Z). E(a,b).").unwrap();
        let mut voc = prog.voc.clone();
        let res = chase_k(&prog.instance, &prog.theory, &mut voc, 3);
        assert_eq!(res.instance.len(), 4);
        assert_eq!(res.rounds, 3);
    }

    #[test]
    fn fact_budget_stops_run() {
        let prog = parse_program("E(X,Y) -> exists Z . E(Y,Z). E(a,b).").unwrap();
        let mut voc = prog.voc.clone();
        let res = chase(
            &prog.instance,
            &prog.theory,
            &mut voc,
            ChaseConfig { max_rounds: u32::MAX, max_facts: 5, ..Default::default() },
        );
        assert_eq!(res.status, ChaseStatus::FactBudget);
        assert!(res.instance.len() >= 5);
    }

    #[test]
    fn multi_head_tgd_creates_shared_witness() {
        let prog = parse_program("P(X) -> E(X,Z), U(Z). P(a).").unwrap();
        let mut voc = prog.voc.clone();
        let res = chase(&prog.instance, &prog.theory, &mut voc, ChaseConfig::default());
        assert!(res.is_fixpoint());
        let e = voc.find_pred("E").unwrap();
        let u = voc.find_pred("U").unwrap();
        let ef = res.instance.facts_with_pred(e);
        let uf = res.instance.facts_with_pred(u);
        assert_eq!((ef.len(), uf.len()), (1, 1));
        // Same witness in both atoms.
        let w1 = res.instance.fact(ef[0]).args[1];
        let w2 = res.instance.fact(uf[0]).args[0];
        assert_eq!(w1, w2);
    }

    /// Both strategies, both variants: same instance, same null names,
    /// same depths — the in-crate smoke version of tests/differential.rs.
    #[test]
    fn naive_and_seminaive_agree_exactly() {
        let src = "E(X,Y) -> exists Z . E(Y,Z).
                   E(X,Y), E(Y,Z) -> E(X,Z).
                   E(X,Y), E(Y,Z), E(Z,X) -> exists T . U(X,T).
                   E(a,b). E(b,c). E(c,a).";
        for variant in [ChaseVariant::Restricted, ChaseVariant::Oblivious] {
            let prog = parse_program(src).unwrap();
            let mut voc_n = prog.voc.clone();
            let naive = chase(
                &prog.instance,
                &prog.theory,
                &mut voc_n,
                ChaseConfig::rounds(5).with_variant(variant).with_strategy(ChaseStrategy::Naive),
            );
            let mut voc_s = prog.voc.clone();
            let semi = chase(
                &prog.instance,
                &prog.theory,
                &mut voc_s,
                ChaseConfig::rounds(5)
                    .with_variant(variant)
                    .with_strategy(ChaseStrategy::SemiNaive),
            );
            assert_eq!(naive.instance, semi.instance, "{variant:?}");
            assert_eq!(naive.depth, semi.depth, "{variant:?}");
            assert_eq!(naive.rounds, semi.rounds, "{variant:?}");
            assert_eq!(naive.status, semi.status, "{variant:?}");
        }
    }

    /// The point of semi-naive evaluation: on transitive closure of the
    /// Example 1 chain, re-deriving every round from scratch does at least
    /// twice the body-match work.
    #[test]
    fn seminaive_does_less_work_on_transitive_closure() {
        let n = 24;
        let mut src = String::from("E(X,Y), E(Y,Z) -> E(X,Z).\n");
        for i in 0..n {
            src.push_str(&format!("E(a{i},a{}).\n", i + 1));
        }
        let prog = parse_program(&src).unwrap();
        let run = |strategy| {
            let mut voc = prog.voc.clone();
            chase(
                &prog.instance,
                &prog.theory,
                &mut voc,
                ChaseConfig::default().with_strategy(strategy),
            )
        };
        let naive = run(ChaseStrategy::Naive);
        let semi = run(ChaseStrategy::SemiNaive);
        assert_eq!(naive.instance, semi.instance);
        let (n_work, s_work) =
            (naive.stats.total_body_matches(), semi.stats.total_body_matches());
        assert!(
            n_work >= 2 * s_work,
            "expected ≥2× savings, got naive = {n_work}, semi-naive = {s_work}"
        );
    }

    #[test]
    fn stats_record_one_entry_per_enumeration_round() {
        let prog = parse_program("E(X,Y) -> exists Z . E(Y,Z). E(a,b).").unwrap();
        let mut voc = prog.voc.clone();
        let res = chase(&prog.instance, &prog.theory, &mut voc, ChaseConfig::rounds(4));
        // 4 productive rounds, each enumerating at least one body match.
        assert_eq!(res.stats.body_matches_per_round.len(), 4);
        assert!(res.stats.body_matches_per_round.iter().all(|&m| m > 0));
    }

    #[test]
    fn chase_with_memory_sink_counts_rounds_and_matches_null_run() {
        use bddfc_core::obs::Memory;
        let prog = parse_program("E(X,Y) -> exists Z . E(Y,Z). E(a,b).").unwrap();
        let sink = Memory::new(64);
        let mut voc1 = prog.voc.clone();
        let observed =
            chase_with(&prog.instance, &prog.theory, &mut voc1, ChaseConfig::rounds(4), &sink);
        let mut voc2 = prog.voc.clone();
        let plain = chase(&prog.instance, &prog.theory, &mut voc2, ChaseConfig::rounds(4));
        // Attaching a sink never changes the output.
        assert_eq!(observed.instance, plain.instance);
        // One round event + one per-rule trigger event per round (the
        // single-atom body joins against an empty residual, so no
        // hom/scan events here); the chain adds one fact and one null
        // per round, and the counters mirror the legacy ChaseStats.
        assert_eq!(
            sink.event_counts(),
            vec![(("chase", "round"), 4), (("chase", "trigger"), 4)]
        );
        assert_eq!(sink.counter("chase", "round", "new_facts"), 4);
        assert_eq!(sink.counter("chase", "round", "nulls_created"), 4);
        assert_eq!(
            sink.counter("chase", "round", "body_matches"),
            observed.stats.total_body_matches()
        );
        assert_eq!(sink.counter("chase", "round", "triggers_fired"), 4);
        // Per-rule attribution reconciles with the round totals.
        assert_eq!(
            sink.counter("chase", "trigger", "body_matches"),
            observed.stats.total_body_matches()
        );
        assert_eq!(sink.counter("chase", "trigger", "triggers_fired"), 4);
        // One run span enclosing four round spans, ids 1..=5, all closed.
        let spans = sink.spans();
        assert_eq!(spans.len(), 5);
        assert_eq!((spans[0].engine, spans[0].name, spans[0].id), ("chase", "run", 1));
        assert!(spans.iter().all(|s| s.is_closed()));
        for (i, s) in spans[1..].iter().enumerate() {
            assert_eq!((s.name, s.parent, s.key), ("round", 1, Some(("round", i as u64 + 1))));
        }
        // Every event is parented under a round span.
        assert!(sink.events().iter().all(|e| e.parent >= 2));
    }

    #[test]
    fn unbudgeted_run_on_unprovable_theory_emits_a_warning() {
        use bddfc_core::obs::Memory;
        // Not weakly acyclic, but the self-loop witnesses the head, so
        // the restricted chase still reaches a fixpoint immediately.
        let prog = parse_program("E(X,Y) -> exists Z . E(Y,Z). E(a,a).").unwrap();
        let unbudgeted =
            ChaseConfig { max_rounds: u32::MAX, max_facts: usize::MAX, ..Default::default() };
        let sink = Memory::new(64);
        let mut voc = prog.voc.clone();
        let res = chase_with(&prog.instance, &prog.theory, &mut voc, unbudgeted, &sink);
        assert!(res.is_fixpoint());
        let warnings: Vec<_> = sink
            .events()
            .iter()
            .filter(|e| (e.engine, e.name) == ("chase", "warning"))
            .cloned()
            .collect();
        assert_eq!(warnings.len(), 1);
        assert_eq!(warnings[0].key, Some(("rule", 0)));
        assert!(warnings[0].fields.iter().any(|&(k, v)| k == "not_weakly_acyclic" && v == 1));

        // A budgeted run of the same theory stays silent, and so does an
        // unbudgeted run of a weakly acyclic theory.
        let sink2 = Memory::new(64);
        let mut voc2 = prog.voc.clone();
        let _ = chase_with(&prog.instance, &prog.theory, &mut voc2, ChaseConfig::default(), &sink2);
        assert!(sink2.events().iter().all(|e| e.name != "warning"));
        let wa = parse_program("P(X) -> exists Z . E(X,Z). P(a).").unwrap();
        let sink3 = Memory::new(64);
        let mut voc3 = wa.voc.clone();
        let _ = chase_with(&wa.instance, &wa.theory, &mut voc3, unbudgeted, &sink3);
        assert!(sink3.events().iter().all(|e| e.name != "warning"));
    }

    #[test]
    fn stepper_matches_batch_run() {
        let prog = parse_program(
            "E(X,Y) -> exists Z . E(Y,Z). E(X,Y), E(Y,Z) -> R(X,Z). E(a,b).",
        )
        .unwrap();
        let mut voc1 = prog.voc.clone();
        let mut stepper = ChaseStepper::new(
            &prog.instance,
            &prog.theory,
            ChaseVariant::Restricted,
            ChaseStrategy::SemiNaive,
        );
        for _ in 0..6 {
            stepper.step(&mut voc1);
        }
        let mut voc2 = prog.voc.clone();
        let batch = chase(&prog.instance, &prog.theory, &mut voc2, ChaseConfig::rounds(6));
        assert_eq!(stepper.instance, batch.instance);
    }
}
