//! # bddfc-chase — the chase engine
//!
//! Implements Section 1.1 of *On the BDD/FC Conjecture*:
//!
//! * the non-oblivious (restricted) chase `Chase¹ / Chaseᵏ / Chase`, with
//!   per-fact derivation depths ([`engine`]);
//! * an oblivious variant for comparison ([`engine`]);
//! * semi-naive saturation under the datalog rules only ([`saturate`]) —
//!   the step Lemma 5 justifies in the finite-model pipeline;
//! * chase-based certain answers and derivation-depth probing
//!   ([`answers`]);
//! * a complete bounded-size finite model finder ([`finder`]) used to
//!   demonstrate non-FC computationally (Section 5.5).

#![warn(missing_docs)]

pub mod answers;
pub mod engine;
pub mod finder;
pub mod incremental;
pub mod saturate;
pub mod trace;

pub use answers::{
    certain_cq, certain_ucq, certain_ucq_outcome, certain_ucq_outcome_with, certain_ucq_with,
    chase_size_comparison, probe_depth, BudgetExhausted, CertainOutcome, Certainty,
};
pub use incremental::{IncrementalChase, MaintainConfig, MaintainOutcome};
pub use engine::{
    chase, chase_k, chase_round, chase_with, chase_with_priors, ChaseConfig, ChaseResult,
    ChaseStats, ChaseStatus, ChaseStepper, ChaseStrategy, ChaseVariant, FiredSet,
};
pub use finder::{countermodel, find_model, find_model_with, FinderConfig, SearchOutcome};
pub use saturate::{
    saturate_datalog, saturate_datalog_naive, saturate_datalog_with, SaturationResult,
};
pub use trace::{traced_chase, Derivation, DerivationTree, TracedChase};
