//! # bddfc-zoo — the paper's examples and workload generators
//!
//! * every example theory from *On the BDD/FC Conjecture* ([`paper`]);
//! * seeded random instance/theory/query generators for benchmarks and
//!   property tests ([`generate`]).

#![warn(missing_docs)]

pub mod generate;
pub mod paper;

pub use generate::{
    anonymous_chain, colored_chain, forest, grid, path_query, random_graph,
    random_linear_theory,
};
pub use paper::{
    chain_theory, corpus, example1, example1_m_prime, example7, example9, guarded_example,
    linear_ontology, notorious, order_theory, remark3, section54, sticky_example, total_order,
};
