//! Seeded random workload generators for benchmarks and property tests.
//!
//! Everything here is deterministic given the seed, so benchmark rows are
//! reproducible.

use bddfc_core::prng::SplitMix64;
use bddfc_core::{Atom, ConstId, Fact, Instance, PredId, Rule, Term, Theory, VarId, Vocabulary};

/// Generates a random directed graph instance over one binary predicate
/// `E` with `nodes` elements and `edges` random edges.
pub fn random_graph(voc: &mut Vocabulary, nodes: usize, edges: usize, seed: u64) -> Instance {
    let e = voc.pred("E", 2);
    let mut rng = SplitMix64::new(seed);
    let elems: Vec<ConstId> = (0..nodes)
        .map(|i| voc.constant(&format!("v{i}")))
        .collect();
    let mut inst = Instance::new();
    while inst.len() < edges {
        let a = elems[rng.below(nodes)];
        let b = elems[rng.below(nodes)];
        inst.insert(Fact::new(e, vec![a, b]));
    }
    inst
}

/// Generates a random *linear* Datalog∃ theory over `preds` binary
/// predicates with `rules` rules (linear theories are BDD and FC, so the
/// whole pipeline applies to them).
pub fn random_linear_theory(
    voc: &mut Vocabulary,
    preds: usize,
    rules: usize,
    seed: u64,
) -> Theory {
    let mut rng = SplitMix64::new(seed);
    let ps: Vec<PredId> = (0..preds)
        .map(|i| voc.pred(&format!("R{i}"), 2))
        .collect();
    let x = voc.var("Xg");
    let y = voc.var("Yg");
    let z = voc.var("Zg");
    let mut out = Vec::new();
    for _ in 0..rules {
        let pb = ps[rng.below(preds)];
        let ph = ps[rng.below(preds)];
        let body = vec![Atom::new(pb, vec![Term::Var(x), Term::Var(y)])];
        let head = if rng.flip() {
            // Existential: R(x,y) -> ∃z S(y,z).
            Atom::new(ph, vec![Term::Var(y), Term::Var(z)])
        } else {
            // Datalog: R(x,y) -> S(y,x).
            Atom::new(ph, vec![Term::Var(y), Term::Var(x)])
        };
        out.push(Rule::single(body, head));
    }
    Theory::new(out)
}

/// A forest-shaped instance: `roots` chains of length `depth` over `E`,
/// with unary markers every `marker_every` steps. All non-root elements
/// are labelled nulls, matching chase-produced skeletons.
pub fn forest(
    voc: &mut Vocabulary,
    roots: usize,
    depth: usize,
    marker_every: usize,
) -> Instance {
    let e = voc.pred("E", 2);
    let u = voc.pred("Mark", 1);
    let mut inst = Instance::new();
    for r in 0..roots {
        let mut prev = {
            let c = voc.constant(&format!("root{r}"));
            c
        };
        for d in 0..depth {
            let next = voc.fresh_null("t");
            inst.insert(Fact::new(e, vec![prev, next]));
            if marker_every > 0 && d % marker_every == 0 {
                inst.insert(Fact::new(u, vec![next]));
            }
            prev = next;
        }
    }
    inst
}

/// A long anonymous chain (Example 3's structure) of the given length.
pub fn anonymous_chain(voc: &mut Vocabulary, len: usize) -> (Instance, Vec<ConstId>) {
    let e = voc.pred("E", 2);
    let elems: Vec<ConstId> = (0..=len).map(|_| voc.fresh_null("a")).collect();
    let mut inst = Instance::new();
    for i in 0..len {
        inst.insert(Fact::new(e, vec![elems[i], elems[i + 1]]));
    }
    (inst, elems)
}

/// Builds the colored chain of Example 4: `len` elements, hues cycling
/// modulo `hues`. Returns the colored instance (colors as unary `Kh`)
/// and the elements.
pub fn colored_chain(
    voc: &mut Vocabulary,
    len: usize,
    hues: usize,
) -> (Instance, Vec<ConstId>) {
    let (mut inst, elems) = anonymous_chain(voc, len);
    let preds: Vec<PredId> = (0..hues).map(|h| voc.pred(&format!("K{h}"), 1)).collect();
    for (i, &e) in elems.iter().enumerate() {
        inst.insert(Fact::new(preds[i % hues], vec![e]));
    }
    (inst, elems)
}

/// A directed grid over two relations: `Right(i,j)->(i,j+1)` and
/// `Down(i,j)->(i+1,j)`. Grids are the classic *non*-treelike structures:
/// every inner node has two predecessors that are unrelated, so they
/// violate the VTDAG clique condition — useful as negative tests for the
/// Section 2.7 machinery.
pub fn grid(voc: &mut Vocabulary, rows: usize, cols: usize) -> Instance {
    let right = voc.pred("Right", 2);
    let down = voc.pred("Down", 2);
    let mut cells = vec![vec![ConstId(0); cols]; rows];
    for (i, row) in cells.iter_mut().enumerate() {
        for (j, cell) in row.iter_mut().enumerate() {
            let _ = (i, j);
            *cell = voc.fresh_null("g");
        }
    }
    let mut inst = Instance::new();
    for i in 0..rows {
        for j in 0..cols {
            if j + 1 < cols {
                inst.insert(Fact::new(right, vec![cells[i][j], cells[i][j + 1]]));
            }
            if i + 1 < rows {
                inst.insert(Fact::new(down, vec![cells[i][j], cells[i + 1][j]]));
            }
        }
    }
    inst
}

/// A random conjunctive path query `E(x₀,x₁) ∧ … ∧ E(x_{k-1},x_k)` with
/// optional branching, for rewriting benchmarks.
pub fn path_query(voc: &mut Vocabulary, len: usize) -> bddfc_core::ConjunctiveQuery {
    let e = voc.pred("E", 2);
    let vars: Vec<VarId> = (0..=len).map(|i| voc.fresh_var(&format!("q{i}"))).collect();
    let atoms = (0..len)
        .map(|i| Atom::new(e, vec![Term::Var(vars[i]), Term::Var(vars[i + 1])]))
        .collect();
    bddfc_core::ConjunctiveQuery::boolean(atoms)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_graph_is_deterministic() {
        let mut v1 = Vocabulary::new();
        let g1 = random_graph(&mut v1, 20, 40, 7);
        let mut v2 = Vocabulary::new();
        let g2 = random_graph(&mut v2, 20, 40, 7);
        assert_eq!(g1.len(), g2.len());
        assert_eq!(g1.facts(), g2.facts());
    }

    #[test]
    fn random_linear_theory_is_linear() {
        let mut voc = Vocabulary::new();
        let t = random_linear_theory(&mut voc, 4, 12, 3);
        assert!(bddfc_classes::is_linear(&t));
        assert_eq!(t.len(), 12);
    }

    #[test]
    fn forest_shape() {
        let mut voc = Vocabulary::new();
        let f = forest(&mut voc, 3, 10, 3);
        let e = voc.find_pred("E").unwrap();
        assert_eq!(f.facts_with_pred(e).len(), 30);
    }

    #[test]
    fn colored_chain_has_one_color_per_element() {
        let mut voc = Vocabulary::new();
        let (inst, elems) = colored_chain(&mut voc, 9, 3);
        // 9 edges + 10 colors.
        assert_eq!(inst.len(), 9 + elems.len());
    }

    #[test]
    fn grid_shape() {
        let mut voc = Vocabulary::new();
        let g = grid(&mut voc, 3, 4);
        // Right edges: 3 rows × 3; Down edges: 2 × 4.
        assert_eq!(g.len(), 9 + 8);
        assert_eq!(g.domain_size(), 12);
    }

    #[test]
    fn path_query_length() {
        let mut voc = Vocabulary::new();
        let q = path_query(&mut voc, 5);
        assert_eq!(q.atoms.len(), 5);
        assert_eq!(q.var_count(), 6);
    }
}
