//! Every example theory and instance from *On the BDD/FC Conjecture*,
//! as ready-made constructors.
//!
//! Each function returns a [`bddfc_core::Program`]; the source text is
//! embedded so examples can also be read as documentation.

use bddfc_core::{parse_program, Program};

fn parse(src: &str) -> Program {
    parse_program(src).expect("zoo source parses")
}

/// Source of [`example1`].
pub const EXAMPLE1_SRC: &str = "% Example 1
         E(X,Y) -> exists Z . E(Y,Z).
         E(X,Y), E(Y,Z), E(Z,X) -> exists T . U(X,T).
         U(X,Y) -> exists Z . U(Y,Z).
         E(a,b).";

/// Source of [`example1_m_prime`].
pub const EXAMPLE1_M_PRIME_SRC: &str = "E(a,b). E(b,c). E(c,a).";

/// Source of [`chain_theory`].
pub const CHAIN_THEORY_SRC: &str = "E(X,Y) -> exists Z . E(Y,Z).
         E(a,b).";

/// Source of [`remark3`].
pub const REMARK3_SRC: &str = "% Remark 3
         E(X,Y) -> exists Z . E(Y,Z).
         E(X,Y), E(Y,Z) -> E(X,Z).
         E(a,a). E(b,c).";

/// Source of [`example7`].
pub const EXAMPLE7_SRC: &str = "% Example 7
         E(X,Y) -> exists Z . E(Y,Z).
         E(X,Y), E(X2,Y) -> R(X,X2).
         E(a,b).";

/// Source of [`example9`].
pub const EXAMPLE9_SRC: &str = "% Example 9
         F(X,Y) -> exists Z . F(Y,Z).
         F(X,Y) -> exists Z . G(Y,Z).
         G(X,Y) -> exists Z . F(Y,Z).
         G(X,Y) -> exists Z . G(Y,Z).
         F(a,b).";

/// Source of [`section54`].
pub const SECTION54_SRC: &str = "% Section 5.4
         R(X,X2,Y,Z) -> E(Y,Z).
         E(X,Y), E(T,Y) -> exists Z . R(X,T,Y,Z).
         E(a,b).";

/// Source of [`notorious`].
pub const NOTORIOUS_SRC: &str = "% Section 5.5
         E(X,Y) -> exists Z . E(Y,Z).
         R(X,Y), E(X,X2), E(Y,Z), E(Z,Y2) -> R(X2,Y2).
         E(a0,a1). R(a0,a0).
         ?- E(X,Y), R(Y,Y).";

/// Source of [`order_theory`].
pub const ORDER_THEORY_SRC: &str = "% §5.5 intro: defines an ordering
         Lt(X,Y) -> exists Z . Lt(Y,Z).
         Lt(X,Y), Lt(Y,Z) -> Lt(X,Z).
         Lt(a,b).
         ?- Lt(X,X).";

/// Source of [`linear_ontology`].
pub const LINEAR_ONTOLOGY_SRC: &str = "% linear ontology
         Person(X) -> exists Z . HasParent(X,Z).
         HasParent(X,Y) -> Person(Y).
         Person(X) -> Named(X).
         Person(alice). HasParent(bob,carol).";

/// Source of [`guarded_example`].
pub const GUARDED_EXAMPLE_SRC: &str = "% guarded
         Mentors(X,Y) -> exists Z . Mentors(Y,Z).
         Mentors(X,Y), Senior(X) -> Senior(Y).
         Mentors(a,b). Senior(a).";

/// Source of [`sticky_example`].
pub const STICKY_EXAMPLE_SRC: &str =
    "% sticky: the join variable P always survives into the head
         WorksOn(X,P), LeaderOf(Y,P) -> ReportsTo(X,Y,P).
         ReportsTo(X,Y,P) -> exists Q . Delegates(Y,P,Q).
         WorksOn(ann,db). LeaderOf(tom,db).";

/// The fixed-source zoo corpus as `(name, source)` pairs, in a stable
/// order — the input set for `bddfc-lint --zoo`, the CI gate and the
/// determinism tests. (The parameterised [`total_order`] is generated,
/// not a fixed source, so it is not listed.)
pub fn corpus() -> &'static [(&'static str, &'static str)] {
    &[
        ("example1", EXAMPLE1_SRC),
        ("example1_m_prime", EXAMPLE1_M_PRIME_SRC),
        ("chain_theory", CHAIN_THEORY_SRC),
        ("remark3", REMARK3_SRC),
        ("example7", EXAMPLE7_SRC),
        ("example9", EXAMPLE9_SRC),
        ("section54", SECTION54_SRC),
        ("notorious", NOTORIOUS_SRC),
        ("order_theory", ORDER_THEORY_SRC),
        ("linear_ontology", LINEAR_ONTOLOGY_SRC),
        ("guarded_example", GUARDED_EXAMPLE_SRC),
        ("sticky_example", STICKY_EXAMPLE_SRC),
    ]
}

/// **Example 1**: the triangle theory whose chase is an infinite E-chain
/// but whose 3-cycle homomorphic image triggers a diverging U-chain.
pub fn example1() -> Program {
    parse(EXAMPLE1_SRC)
}

/// The 3-cycle `M'` of Examples 1 and 2 — a homomorphic image of the
/// chase that is *not* a model of the theory.
pub fn example1_m_prime() -> Program {
    parse(EXAMPLE1_M_PRIME_SRC)
}

/// **Example 3 / Example 4 substrate**: the plain successor rule whose
/// chase from `E(a,b)` is the infinite chain.
pub fn chain_theory() -> Program {
    parse(CHAIN_THEORY_SRC)
}

/// **Remark 3**: satisfies (♠3) without being ptp-conservative — the
/// chase contains an infinite irreflexive total order next to a loop.
pub fn remark3() -> Program {
    parse(REMARK3_SRC)
}

/// **Example 6 substrate**: a finite prefix of a strict total order with
/// `len` elements (the non-conservative structure).
pub fn total_order(len: usize) -> Program {
    let mut src = String::new();
    for i in 0..len {
        for j in (i + 1)..len {
            src.push_str(&format!("Lt(o{i},o{j}). "));
        }
    }
    parse(&src)
}

/// **Example 7**: BDD theory whose quotient needs datalog saturation —
/// `E(x,y) → ∃z E(y,z)` and `E(x,y) ∧ E(x',y) → R(x,x')`.
pub fn example7() -> Program {
    parse(EXAMPLE7_SRC)
}

/// **Example 9**: the F/G binary-tree theory whose quotients contain
/// undirected (but no short directed) cycles.
pub fn example9() -> Program {
    parse(EXAMPLE9_SRC)
}

/// **Section 5.4**: the quaternary obstruction — BDD, but no analogue of
/// Lemma 5 can hold (witnesses depend on whole tuples).
pub fn section54() -> Program {
    parse(SECTION54_SRC)
}

/// **Section 5.5, the "notorious example"**: a theory that does not
/// define an ordering yet is not FC. `Chase ⊭ E(x,y) ∧ R(y,y)`, but every
/// finite model satisfies it.
pub fn notorious() -> Program {
    parse(NOTORIOUS_SRC)
}

/// The infinite-order theory from the introduction of §5.5 (the "most
/// natural" non-FC theory): a strict total order with a maximal element
/// demanded forever.
pub fn order_theory() -> Program {
    parse(ORDER_THEORY_SRC)
}

/// A linear (hence BDD and FC) ontology used as the well-behaved
/// comparison point in benchmarks.
pub fn linear_ontology() -> Program {
    parse(LINEAR_ONTOLOGY_SRC)
}

/// A guarded, non-linear theory (for the §5.6 translation demos).
pub fn guarded_example() -> Program {
    parse(GUARDED_EXAMPLE_SRC)
}

/// A sticky but unguarded theory (Calì–Gottlob–Pieris flavour).
pub fn sticky_example() -> Program {
    parse(STICKY_EXAMPLE_SRC)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bddfc_classes::classify;

    #[test]
    fn all_zoo_programs_parse() {
        for p in [
            example1(),
            example1_m_prime(),
            chain_theory(),
            remark3(),
            total_order(4),
            example7(),
            example9(),
            section54(),
            notorious(),
            order_theory(),
            linear_ontology(),
            guarded_example(),
            sticky_example(),
        ] {
            // The vocabulary must know every predicate used.
            assert!(p.voc.pred_count() > 0);
        }
    }

    #[test]
    fn classifications_match_the_paper() {
        let e1 = example1();
        let r = classify(&e1.theory, &e1.voc);
        assert!(r.binary && !r.linear);

        let lin = linear_ontology();
        let r = classify(&lin.theory, &lin.voc);
        assert!(r.linear && r.guarded);

        let g = guarded_example();
        let r = classify(&g.theory, &g.voc);
        assert!(r.guarded && !r.linear);

        let s54 = section54();
        let r = classify(&s54.theory, &s54.voc);
        assert!(!r.binary); // quaternary R

        let st = sticky_example();
        assert!(bddfc_classes::is_sticky(&st.theory));
    }

    #[test]
    fn full_classification_is_pinned_for_every_corpus_program() {
        // The complete recognizer verdict for each corpus program, as
        // (binary, linear, guarded, sticky, weakly_acyclic, theorem3).
        // A recognizer change that re-classifies a paper example must
        // update this table deliberately.
        let expected: &[(&str, [bool; 6])] = &[
            ("example1", [true, false, false, false, false, true]),
            ("example1_m_prime", [true, true, true, true, true, true]),
            ("chain_theory", [true, true, true, true, false, true]),
            ("remark3", [true, false, false, false, false, true]),
            ("example7", [true, false, false, false, false, true]),
            ("example9", [true, true, true, true, false, true]),
            ("section54", [false, false, false, false, false, false]),
            ("notorious", [true, false, false, false, false, true]),
            ("order_theory", [true, false, false, false, false, true]),
            ("linear_ontology", [true, true, true, true, false, true]),
            ("guarded_example", [true, false, true, false, false, true]),
            ("sticky_example", [false, false, false, true, true, false]),
        ];
        let corpus = corpus();
        assert_eq!(corpus.len(), expected.len(), "corpus/table drift");
        for (&(name, src), &(ename, flags)) in corpus.iter().zip(expected) {
            assert_eq!(name, ename, "corpus order changed");
            let p = bddfc_core::parse_program(src).unwrap();
            let r = classify(&p.theory, &p.voc);
            let got = [r.binary, r.linear, r.guarded, r.sticky, r.weakly_acyclic, r.theorem3];
            assert_eq!(got, flags, "classification of {name} drifted: {r:?}");
        }
    }

    #[test]
    fn notorious_query_parses() {
        let n = notorious();
        assert_eq!(n.queries.len(), 1);
        assert_eq!(n.instance.len(), 2);
    }

    #[test]
    fn total_order_has_expected_size() {
        let p = total_order(5);
        assert_eq!(p.instance.len(), 10); // C(5,2)
    }
}
