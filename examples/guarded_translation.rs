//! Section 5.6: guarded Datalog∃ programs are binary in disguise.
//!
//! Translates guarded theories into binary ones and shows that the result
//! lands in the fragment the paper's machinery covers (every TGD has a
//! single frontier variable — the Theorem 3 shape).
//!
//! Run with: `cargo run --example guarded_translation`

use bddfc::classes::{classify, guarded_to_binary, to_ternary};
use bddfc::prelude::*;

fn main() {
    println!("== §5.6: the guarded → binary translation ==\n");

    let mut voc = Vocabulary::new();
    let (theory, _, _) = bddfc::core::parse_into(
        "R(X,Y,Z) -> exists W . S(Y,Z,W).
         S(X,Y,Z), P(X) -> P(Z).",
        &mut voc,
    )
    .expect("parses");

    let report = classify(&theory, &voc);
    println!("input classification: {report:?}");
    assert!(report.guarded && !report.binary);

    let tr = guarded_to_binary(&theory, &mut voc).expect("guarded fragment");
    println!(
        "translated: {} rules over {} parent links, {} creation predicates, {} monadic predicates",
        tr.theory.len(),
        tr.f_preds.len(),
        tr.e_preds.len(),
        tr.monadic.len()
    );
    let out_report = classify(&tr.theory, &voc);
    println!("output classification: {out_report:?}");
    assert!(out_report.binary, "the output signature is binary");
    assert!(
        bddfc::classes::is_theorem3_fragment(&tr.theory),
        "every translated TGD has one frontier variable (§5.1 shape)"
    );

    println!("\ntranslated rules:");
    print!("{}", tr.theory.display(&voc));

    // Bonus: the §5.2 ternary reduction on a quaternary theory.
    println!("\n== §5.2: the ternary reduction ==\n");
    let mut voc2 = Vocabulary::new();
    let (theory4, _, _) = bddfc::core::parse_into(
        "P(X,Y,Z,X) -> exists T . R(X,Y,Z,T).
         R(X,Y,Z,T) -> S(X,T).",
        &mut voc2,
    )
    .expect("parses");
    let red = to_ternary(&theory4, &mut voc2);
    println!(
        "quaternary theory ({} rules) becomes ternary ({} rules):",
        theory4.len(),
        red.theory.len()
    );
    print!("{}", red.theory.display(&voc2));
    assert!(red.theory.preds().into_iter().all(|p| voc2.arity(p) <= 3));
}
