//! Derivation trees, query shapes and the ordering probe: the analysis
//! side of the library.
//!
//! Run with: `cargo run --example derivations_and_shapes`

use bddfc::prelude::*;
use bddfc::rewrite::{find_fork, measure, resolve_fork_by_unification};

fn main() {
    // 1. Derivation trees — the objects whose height the BDD property
    //    bounds (Section 1.1).
    println!("== Derivation trees ==\n");
    let prog = parse_program(
        "E(X,Y), E(Y,Z) -> E(X,Z).
         E(a,b). E(b,c). E(c,d). E(d,f).",
    )
    .expect("parses");
    let mut voc = prog.voc.clone();
    let traced = bddfc::chase::traced_chase(&prog.instance, &prog.theory, &mut voc, 8);
    assert!(traced.fixpoint);
    let e = voc.find_pred("E").unwrap();
    let a = voc.find_const("a").unwrap();
    let f = voc.find_const("f").unwrap();
    let af = bddfc::core::Fact::new(e, vec![a, f]);
    let tree = traced.explain(&af).expect("derived");
    println!(
        "E(a,f) has a derivation of height {} with {} rule applications:\n{}",
        tree.height(),
        tree.size(),
        tree.display(&voc)
    );

    // 2. Query shapes — Section 4's trichotomy.
    println!("== Query shapes (Section 4) ==\n");
    for src in [
        "E(X,Y), E(Y,Z), F(Y,W)",
        "E(X,Y), E(Y,Z), E(Z,X)",
        "F(X1,Y1), F(X2,Y1), G(X2,Y2), G(X1,Y2)",
    ] {
        let q = parse_query(src, &mut voc).expect("parses");
        println!("{src:<44} -> {:?}, measure {}", shape(&q), measure(&q));
    }

    // 3. Normalization (Lemma 11, option 1): unify the fork sources.
    let diamond =
        parse_query("F(X1,Y1), F(X2,Y1), G(X2,Y2), G(X1,Y2)", &mut voc).expect("parses");
    let fork = find_fork(&diamond).expect("the diamond has a fork");
    let unified = resolve_fork_by_unification(&diamond, &fork);
    println!(
        "\nunifying the fork sources: {} vars -> {} vars, shape {:?}",
        diamond.var_count(),
        unified.var_count(),
        shape(&unified)
    );

    // 4. The Conjecture 2 probe (§5.5).
    println!("\n== Does the theory define an ordering? (Conjecture 2) ==\n");
    for (name, p) in [
        ("order theory", bddfc::zoo::order_theory()),
        ("notorious", bddfc::zoo::notorious()),
    ] {
        let mut v = p.voc.clone();
        match order_probe(&p.instance, &p.theory, &mut v, 10, 6) {
            Some(w) => println!(
                "{name}: defines an ordering via {} (chain of {}) -> provably not FC",
                w.query.display(&v),
                w.chain.len()
            ),
            None => println!("{name}: no defining query found (probe is one-sided)"),
        }
    }
    println!("\nThe notorious theory defines no ordering yet is not FC —");
    println!("run `cargo run --example non_fc_demo` for the exhaustive check.");
}
