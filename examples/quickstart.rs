//! Quickstart: parse a Datalog∃ program, run the chase, answer a query
//! three ways (chase, rewriting, finite countermodel).
//!
//! Run with: `cargo run --example quickstart`

use bddfc::prelude::*;

fn main() {
    // A small ontology: every person has a parent, parents are persons.
    let prog = parse_program(
        "Person(X) -> exists Z . HasParent(X,Z).
         HasParent(X,Y) -> Person(Y).
         Person(alice).
         ?- HasParent(alice,W), HasParent(W,V).",
    )
    .expect("parses");
    let mut voc = prog.voc.clone();
    let query = &prog.queries[0];

    println!("theory:\n{}", prog.theory.display(&voc));
    println!("database:\n{}", prog.instance.display(&voc));

    // 1. Chase-based certain answer (the chase here is infinite, but the
    //    query becomes true at depth 2).
    let by_chase = certain_cq(
        &prog.instance,
        &prog.theory,
        &mut voc.clone(),
        query,
        ChaseConfig::default(),
    );
    println!("chase says: {by_chase:?}");
    assert_eq!(by_chase, Certainty::True(3));

    // 2. Rewriting-based certain answer (Definition 2: the theory is
    //    linear, hence BDD, so a UCQ rewriting exists).
    let rw = rewrite_query(query, &prog.theory, &mut voc, RewriteConfig::default())
        .expect("single-head theory");
    assert!(rw.saturated, "linear theories rewrite finitely");
    println!(
        "rewriting has {} disjunct(s): {}",
        rw.ucq.len(),
        rw.ucq.display(&voc)
    );
    let by_rewriting = bddfc::core::hom::satisfies_ucq(&prog.instance, &rw.ucq);
    println!("rewriting says: {by_rewriting}");
    assert!(by_rewriting);

    // 3. A query that is *not* entailed: the paper's FC machinery builds a
    //    finite model of the theory in which it stays false.
    let not_entailed = parse_query("HasParent(W,W)", &mut voc).expect("parses");
    let outcome = finite_countermodel(
        &prog.instance,
        &prog.theory,
        &not_entailed,
        &mut voc,
        FcConfig::default(),
    );
    let cert = outcome.model().expect("countermodel exists — the theory is FC");
    println!(
        "finite countermodel with {} elements (n = {}, kappa = {}):\n{}",
        cert.model_size,
        cert.n,
        cert.kappa,
        cert.model.display(&voc)
    );
    let failures =
        certify_countermodel(&cert.model, &prog.instance, &prog.theory, &not_entailed, &voc);
    assert!(failures.is_empty());
    println!("certified: model ⊨ D,T and model ⊭ query");
}
