//! Observability walkthrough: run a chase under a recording sink, roll
//! the attributed events up into a per-rule profile by hand, and emit
//! the same telemetry as a JSONL trace.
//!
//! Run with: `cargo run --example observability`
//!
//! Every engine entry point has a `*_with(.., sink)` variant taking any
//! [`bddfc::core::obs::EventSink`]. The default [`Null`] sink is erased
//! at compile time (see `tests/overhead.rs`); a [`Memory`] sink records
//! counters, a bounded event log and the span tree; a [`JsonLines`]
//! sink streams everything as one JSON object per line. The `bddfc-prof`
//! binary (`cargo run -p bddfc-bench --bin bddfc-prof -- --list`) wraps
//! this machinery in a full profiler — this example shows the raw API
//! it is built on.

use bddfc::chase::{chase_with, ChaseConfig};
use bddfc::core::obs::{event_json, span_json, Memory};
use std::collections::BTreeMap;

fn main() {
    // Example 1 of the paper: three rules, a diverging chase — bound it.
    let prog = bddfc::zoo::example1();
    let mut voc = prog.voc.clone();

    // 1. Chase under a Memory sink. Capacity bounds only the event/span
    //    *logs*; counters keep accumulating past it.
    let sink = Memory::new(4096);
    let result = chase_with(
        &prog.instance,
        &prog.theory,
        &mut voc,
        ChaseConfig::rounds(6),
        &sink,
    );
    println!(
        "chased {} rounds, {} facts, status {:?}\n",
        result.rounds,
        result.instance.len(),
        result.status
    );

    // 2. Per-rule profile: every `chase`/`trigger` event carries a
    //    `("rule", i)` attribution key, deterministic fields (body
    //    matches, candidates, triggers fired) and a `wall_ns` gauge.
    let mut per_rule: BTreeMap<u64, (u64, u64, u64)> = BTreeMap::new();
    for e in sink.events() {
        if e.engine == "chase" && e.name == "trigger" {
            if let Some(("rule", idx)) = e.key {
                let row = per_rule.entry(idx).or_default();
                row.0 += e.field("body_matches").unwrap_or(0);
                row.1 += e.field("triggers_fired").unwrap_or(0);
                row.2 += e.gauge("wall_ns").unwrap_or(0);
            }
        }
    }
    println!("per-rule profile:");
    for (idx, (matches, fired, ns)) in &per_rule {
        println!(
            "  rule[{idx}] {:<40} matches {matches:>5}  fired {fired:>4}  {ns:>9}ns",
            prog.theory.rules[*idx as usize].display(&voc).to_string()
        );
    }
    // The attributed totals reconcile with the legacy ChaseStats.
    let attributed: u64 = per_rule.values().map(|r| r.0).sum();
    assert_eq!(attributed, result.stats.total_body_matches());
    println!("  (total body matches {attributed} == ChaseStats — reconciled)\n");

    // 3. The span tree: chase/run #1 wraps one chase/round span per
    //    round, ids handed out sequentially — deterministic at any
    //    BDDFC_THREADS setting.
    println!("spans:");
    for s in sink.spans() {
        let indent = if s.parent == 0 { "  " } else { "    " };
        println!("{indent}{}/{} #{} ({}ns)", s.engine, s.name, s.id, s.wall_ns());
    }

    // 4. The same telemetry as a JSONL trace (what the JsonLines sink
    //    streams live, and what `bddfc-prof --trace` writes to a file).
    println!("\nfirst trace lines:");
    for e in sink.events().iter().take(3) {
        println!("  {}", event_json(&e.as_event()));
    }
    for s in sink.spans().iter().take(2) {
        println!("  {}", span_json(s));
    }
}
