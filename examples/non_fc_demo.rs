//! The other side of the conjecture: theories that are *not* FC, checked
//! computationally with the bounded model finder (Section 5.5).
//!
//! Run with: `cargo run --example non_fc_demo`

use bddfc::prelude::*;

fn main() {
    println!("== §5.5: failures of Finite Controllability ==\n");

    // The infinite-order theory: Lt is transitively closed and every
    // element has a strict successor. Chase(D,T) ⊭ Lt(x,x), yet every
    // finite model must close a cycle and derive Lt(x,x).
    let order = bddfc::zoo::order_theory();
    let mut voc = order.voc.clone();
    let q = &order.queries[0];
    println!("order theory:\n{}", order.theory.display(&voc));
    for n in 1..=4 {
        let out = countermodel(&order.instance, &order.theory, &mut voc, q, n);
        println!("  countermodel within {n} elements? {}", describe(&out));
        assert!(matches!(out, SearchOutcome::NoModelWithin(_)));
    }
    println!("  (the paper: any finite model contains a cycle, so Lt(x,x) holds)\n");

    // The "notorious example": does NOT define an ordering, still not FC.
    let notorious = bddfc::zoo::notorious();
    let mut voc = notorious.voc.clone();
    let q = &notorious.queries[0];
    println!("notorious theory:\n{}", notorious.theory.display(&voc));
    for n in 2..=4 {
        let out = countermodel(&notorious.instance, &notorious.theory, &mut voc, q, n);
        println!(
            "  countermodel for E(x,y) ∧ R(y,y) within {n} elements? {}",
            describe(&out)
        );
        assert!(matches!(out, SearchOutcome::NoModelWithin(_)));
    }
    println!("  (the paper proves *no* finite countermodel exists at any size)\n");

    // Contrast: an FC theory where the finder succeeds immediately.
    let chain = bddfc::zoo::chain_theory();
    let mut voc = chain.voc.clone();
    let q = parse_query("E(X,X)", &mut voc).expect("parses");
    let out = countermodel(&chain.instance, &chain.theory, &mut voc, &q, 4);
    println!("successor theory, query E(x,x):");
    match &out {
        SearchOutcome::Found(m) => {
            println!("  countermodel found:\n{}", m.display(&voc));
        }
        other => panic!("expected a model, got {other:?}"),
    }
}

fn describe(out: &SearchOutcome) -> String {
    match out {
        SearchOutcome::Found(m) => format!("FOUND ({} facts)", m.len()),
        SearchOutcome::NoModelWithin(n) => format!("no — search space ≤ {n} exhausted"),
        SearchOutcome::Budget => "budget exceeded".into(),
    }
}
