//! Theorem 2 in action: certified finite countermodels for the paper's
//! own example theories.
//!
//! Run with: `cargo run --example finite_countermodels`

use bddfc::prelude::*;

fn demo(name: &str, prog: &Program, query_src: &str) {
    let mut voc = prog.voc.clone();
    let query = parse_query(query_src, &mut voc).expect("query parses");
    print!("{name:<14} query {query_src:<24} ");
    match finite_countermodel(&prog.instance, &prog.theory, &query, &mut voc, FcConfig::default())
    {
        FcOutcome::Countermodel(cert) => {
            let failures = certify_countermodel(
                &cert.model,
                &prog.instance,
                &prog.theory,
                &query,
                &voc,
            );
            assert!(failures.is_empty(), "{failures:?}");
            println!(
                "countermodel: |M| = {:<3} n = {} kappa = {} prefix = {} lemma5 = {}",
                cert.model_size, cert.n, cert.kappa, cert.chase_depth, cert.lemma5_no_new_elements
            );
        }
        FcOutcome::Entailed { depth } => println!("entailed at chase depth {depth}"),
        FcOutcome::Inconclusive(reason) => println!("inconclusive: {reason}"),
    }
}

fn main() {
    println!("== The FC pipeline on the paper's theories ==\n");

    // The plain successor chain (Examples 3/4 substrate).
    let chain = bddfc::zoo::chain_theory();
    demo("chain", &chain, "E(X,X)");
    demo("chain", &chain, "E(X,Y), E(Y,X)");
    demo("chain", &chain, "E(X1,X2), E(X2,X3)"); // entailed

    // Example 7: existential chain + datalog sibling rule.
    let e7 = bddfc::zoo::example7();
    demo("example7", &e7, "R(X,Y), E(X,Y)");
    demo("example7", &e7, "R(X,X)"); // entailed (R(e,e) everywhere)

    // Example 9: the F/G binary tree.
    let e9 = bddfc::zoo::example9();
    demo("example9", &e9, "F(X,X)");
    demo("example9", &e9, "F(X,Y), G(X,Y)");

    // A linear ontology.
    let lin = bddfc::zoo::linear_ontology();
    demo("linear", &lin, "HasParent(W,W)");
    demo("linear", &lin, "Named(alice)"); // entailed at depth 0? via rule

    println!("\nEvery countermodel above was re-checked by the independent certifier.");
}
