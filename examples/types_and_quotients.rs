//! Section 2 visualized: positive types, quotient structures and
//! conservative colorings on the paper's chain examples.
//!
//! Run with: `cargo run --example types_and_quotients`

use bddfc::prelude::*;
use bddfc::types::check_conservative;

fn main() {
    println!("== Examples 3 & 4: types and quotients of the chain ==\n");

    // The anonymous chain a0 -> a1 -> ... (Example 3's structure).
    let mut voc = Vocabulary::new();
    let (chain, elems) = bddfc::zoo::anonymous_chain(&mut voc, 20);

    for n in 2..=4 {
        let analyzer = TypeAnalyzer::new(&chain, &mut voc, n);
        let partition = analyzer.partition();
        println!(
            "≡_{n} partition of the 21-element chain: {} classes (sizes {:?})",
            partition.len(),
            partition.iter().map(|c| c.len()).collect::<Vec<_>>()
        );
    }

    // Quotient without colors: the interior class closes a self-loop —
    // Example 3's complaint that small queries see the difference.
    let analyzer = TypeAnalyzer::new(&chain, &mut voc, 3);
    let quotient = Quotient::new(&chain, analyzer.partition(), &mut voc);
    let e = voc.find_pred("E").unwrap();
    let interior = quotient.project(elems[10]);
    let has_loop = quotient
        .instance
        .contains(&bddfc::core::Fact::new(e, vec![interior, interior]));
    println!(
        "\nuncolored quotient: {} elements, interior self-loop: {has_loop}",
        quotient.instance.domain_size()
    );
    assert!(has_loop);

    // Example 4: natural coloring makes the quotient conservative.
    println!("\n== Definition 14: the natural coloring fixes it ==\n");
    let m = 2;
    let found = find_conservative_n(&chain, &mut voc, m, 2..=6);
    match found {
        Some((n, check)) => {
            println!(
                "natural coloring with m = {m}: n = {n} is conservative; quotient has {} elements, {} colors",
                check.quotient.class_count(),
                check.coloring.color_count(),
            );
            assert!(check.is_conservative());
        }
        None => panic!("the Main Lemma guarantees some n works"),
    }

    // And the trivial single-color coloring is *not* conservative.
    let mut color_of = bddfc_core::fxhash::FxHashMap::default();
    let color = bddfc::types::Color { hue: 0, lightness: 0 };
    for el in chain.domain() {
        color_of.insert(el, color);
    }
    let mut pred_of = bddfc_core::fxhash::FxHashMap::default();
    pred_of.insert(color, voc.pred("K_trivial", 1));
    let trivial = bddfc::types::Coloring { color_of, pred_of };
    let sigma = chain.used_preds().collect();
    let check = check_conservative(&chain, &trivial, &mut voc, 3, 2, &sigma);
    println!(
        "trivial coloring, n = 3: conservative? {} ({} failing elements)",
        check.is_conservative(),
        check.failures.len()
    );
    assert!(!check.is_conservative());
}
