//! Profiler acceptance suite: `bddfc-prof`'s `--check` report must be
//! byte-identical across thread counts, its attribution must reconcile
//! with the legacy `ChaseStats` counters, the collapsed-stack output
//! must be well-formed, and the two CLIs (`bddfc-prof`, `bench_diff`)
//! must pass their smoke runs — `bench_diff` against the committed
//! `BENCH_<target>.json` baselines.

use bddfc::core::par;
use bddfc_bench::diff::diff_files;
use bddfc_bench::prof::{run_workload, Report};
use bddfc_core::obs::Memory;
use std::process::Command;

const THREADS: [usize; 3] = [1, 2, 7];

/// Runs a workload and renders everything deterministic (`--check`
/// mode): tables, span tree, reconciliation lines.
fn check_render(workload: &str, threads: usize) -> String {
    par::with_thread_count(threads, || {
        let sink = Memory::new(1 << 16);
        let run = run_workload(workload, &sink).expect("known workload");
        assert_eq!(sink.dropped(), 0, "{workload}: raise the test capacity");
        let report = Report::new(&sink, run, false);
        let checks = report.reconcile().expect("telemetry invariants hold");
        format!(
            "{}{}{}",
            report.render_tables(),
            report.render_span_tree(),
            checks.join("\n")
        )
    })
}

#[test]
fn check_reports_are_byte_identical_across_thread_counts() {
    for workload in ["e13", "example1", "saturate", "rewrite"] {
        let base = check_render(workload, THREADS[0]);
        for &t in &THREADS[1..] {
            assert_eq!(
                base,
                check_render(workload, t),
                "{workload}: --check report differs at {t} threads"
            );
        }
    }
}

#[test]
fn e13_profile_reconciles_with_chase_stats() {
    let sink = Memory::new(1 << 16);
    let run = run_workload("e13", &sink).expect("e13 exists");
    let stats = run.chase_stats.clone().expect("e13 chases");
    let total = stats.total_body_matches();
    assert!(total > 0);
    // The per-rule trigger events must account for every body match the
    // legacy counters saw, and the per-round summaries must agree.
    let sum = |name: &str| -> u64 {
        sink.events()
            .iter()
            .filter(|e| e.engine == "chase" && e.name == name)
            .filter_map(|e| e.field("body_matches"))
            .sum()
    };
    assert_eq!(sum("trigger"), total, "per-rule attribution leaks body matches");
    assert_eq!(sum("round"), total, "per-round summaries leak body matches");
    // And the rendered table shows the one transitivity rule.
    let report = Report::new(&sink, run, true);
    let tables = report.render_tables();
    assert!(tables.contains("E(X,Y), E(Y,Z) -> E(X,Z)"), "{tables}");
    report.reconcile().expect("reconciliation passes");
}

#[test]
fn folded_flamegraph_output_is_wellformed() {
    let sink = Memory::new(1 << 16);
    let run = run_workload("e13", &sink).expect("e13 exists");
    let folded = Report::new(&sink, run, true).render_folded();
    assert!(!folded.is_empty());
    let mut saw_round = false;
    for line in folded.lines() {
        // Collapsed-stack format: `frame;frame;frame <weight>` — one
        // space, splitting stack from an integer weight; frames carry
        // no spaces or empty segments.
        let (stack, weight) = line.rsplit_once(' ').expect("stack and weight");
        assert!(weight.parse::<u64>().is_ok(), "non-integer weight in {line:?}");
        assert!(!stack.contains(' '), "space inside a frame in {line:?}");
        for frame in stack.split(';') {
            assert!(!frame.is_empty(), "empty frame in {line:?}");
        }
        saw_round |= stack.starts_with("chase/run;chase/round[");
    }
    assert!(saw_round, "expected chase/round stacks in:\n{folded}");
}

/// `cargo run -p bddfc-bench --bin bddfc-prof -- --workload e13 --check`
/// is the CI smoke run the README documents; keep it green from inside
/// `cargo test`.
#[test]
fn prof_cli_check_smoke() {
    let out = Command::new(env!("CARGO"))
        .args(["run", "-q", "-p", "bddfc-bench", "--bin", "bddfc-prof", "--"])
        .args(["--workload", "e13", "--check"])
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .expect("cargo run bddfc-prof");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "bddfc-prof --check failed:\n{stdout}\n{stderr}");
    assert!(stdout.contains("check: ok"), "{stdout}");
    assert!(stdout.contains("profile — chase/trigger by rule"), "{stdout}");
}

/// `bench_diff` self-test: every committed `BENCH_<target>.json` must
/// parse (legacy prefix included) and diff cleanly against itself with
/// zero regressions.
#[test]
fn bench_diff_accepts_the_committed_baselines() {
    let bench_dir = format!("{}/crates/bench", env!("CARGO_MANIFEST_DIR"));
    let mut seen = 0;
    for target in ["chase", "rewrite", "types", "pipeline"] {
        let path = format!("{bench_dir}/BENCH_{target}.json");
        let Ok(text) = std::fs::read_to_string(&path) else { continue };
        seen += 1;
        let report = diff_files(&text, &text, "median_ns")
            .unwrap_or_else(|e| panic!("{path}: {e}"));
        assert!(!report.compared.is_empty(), "{path}: no comparable rows");
        assert!(report.only_old.is_empty() && report.only_new.is_empty(), "{path}");
        assert!(report.regressions(0).is_empty(), "{path}: self-diff regressed");
    }
    assert!(seen > 0, "no committed BENCH_<target>.json files found");
}

#[test]
fn bench_diff_cli_gates_on_threshold() {
    let dir = std::env::temp_dir().join("bddfc_bench_diff_test");
    std::fs::create_dir_all(&dir).unwrap();
    let old = dir.join("old.json");
    let new = dir.join("new.json");
    std::fs::write(&old, "{\"name\":\"a\",\"median_ns\":100,\"threads\":1}\n").unwrap();
    std::fs::write(&new, "{\"name\":\"a\",\"median_ns\":150,\"threads\":1}\n").unwrap();
    let run = |threshold: &str| {
        Command::new(env!("CARGO"))
            .args(["run", "-q", "-p", "bddfc-bench", "--bin", "bench_diff", "--"])
            .arg(&old)
            .arg(&new)
            .args(["--threshold", threshold])
            .current_dir(env!("CARGO_MANIFEST_DIR"))
            .output()
            .expect("cargo run bench_diff")
    };
    let strict = run("10");
    assert!(!strict.status.success(), "50% growth must fail a 10% gate");
    assert!(String::from_utf8_lossy(&strict.stdout).contains("REGRESSION"));
    let lax = run("60");
    let lax_out = String::from_utf8_lossy(&lax.stdout);
    assert!(lax.status.success(), "50% growth must pass a 60% gate:\n{lax_out}");
}
