//! Integration tests for `bddfc-serve`: the incremental chase service.
//!
//! Covers the PR's acceptance criteria end to end:
//! * the E13 workload answers an insert-then-query session without
//!   re-running already-applied chase rounds (obs round counters);
//! * interleaved insert/query/retract sessions are byte-identical at
//!   1, 2 and 7 worker threads;
//! * the golden transcript fixture under `tests/serve/` replays
//!   in-process;
//! * misconfigured `BDDFC_JOIN`/`BDDFC_THREADS` kill the binary at
//!   startup with messages naming the offending value.

use bddfc_core::obs::Memory;
use bddfc_core::{par, Atom, Program, Rule, Term, Theory, Vocabulary};
use bddfc_serve::{transcript, ServeConfig, Server};
use bddfc_zoo::generate::random_graph;
use std::process::{Command, Output, Stdio};

/// The transitive-closure theory `E(X,Y), E(Y,Z) -> E(X,Z)` over a
/// fresh vocabulary's binary `E`.
fn tc_program(voc: &mut Vocabulary) -> (Theory, bddfc_core::PredId) {
    let e = voc.pred("E", 2);
    let (x, y, z) = (voc.var("X"), voc.var("Y"), voc.var("Z"));
    let rule = Rule::single(
        vec![
            Atom::new(e, vec![Term::Var(x), Term::Var(y)]),
            Atom::new(e, vec![Term::Var(y), Term::Var(z)]),
        ],
        Atom::new(e, vec![Term::Var(x), Term::Var(z)]),
    );
    (Theory::new(vec![rule]), e)
}

/// `("chase", "round")` events seen so far — one per applied round.
fn rounds(sink: &Memory) -> u64 {
    sink.event_counts()
        .iter()
        .find(|(k, _)| *k == ("chase", "round"))
        .map_or(0, |&(_, n)| n)
}

/// Acceptance criterion: on the E13 workload (TC over
/// `random_graph(60, 180, 13)`), an insert re-fires only the delta —
/// the second query is answered without re-running the rounds the load
/// already applied, and queries themselves run zero chase rounds.
#[test]
fn e13_insert_then_query_reuses_applied_rounds() {
    let mut voc = Vocabulary::new();
    let graph = random_graph(&mut voc, 60, 180, 13);
    let (theory, _) = tc_program(&mut voc);
    let program = Program { voc, theory, instance: graph, queries: Vec::new() };

    let sink = Memory::new(1 << 16);
    let server = Server::with_sink(&program, ServeConfig::default(), &sink);
    let loaded = rounds(&sink);
    assert!(loaded >= 2, "the initial closure must run real rounds, got {loaded}");

    assert_eq!(transcript(&server, "query E(v0,v0)\n").trim(), "true");
    assert_eq!(rounds(&sink), loaded, "a query must run zero chase rounds");

    // A new node wired into the closed graph: the delta re-closes in a
    // couple of rounds instead of re-running the whole load.
    let t = transcript(&server, "insert E(u,v0).\n");
    assert!(t.starts_with("ok epoch=2"), "{t}");
    let delta = rounds(&sink) - loaded;
    assert!(
        delta >= 1 && delta < loaded,
        "insert must resume incrementally: {delta} delta rounds vs {loaded} at load"
    );

    let after_insert = rounds(&sink);
    assert_eq!(transcript(&server, "query E(u,v0)\n").trim(), "true");
    assert_eq!(
        rounds(&sink),
        after_insert,
        "the post-insert query must be answered from the resident instance"
    );
}

/// Interleaved insert/query/retract sessions produce byte-identical
/// responses at 1, 2 and 7 worker threads (the in-process override
/// behind `BDDFC_THREADS`).
#[test]
fn interleaved_sessions_are_byte_identical_across_thread_counts() {
    let mut voc = Vocabulary::new();
    let (theory, _) = tc_program(&mut voc);
    let program =
        Program { voc, theory, instance: bddfc_core::Instance::new(), queries: Vec::new() };
    let script = "insert E(a,b). E(b,c).\n\
                  query E(a,c)\n\
                  insert E(c,d). E(d,e).\n\
                  query E(a,e)\n\
                  retract E(b,c).\n\
                  query E(a,e)\n\
                  query E(c,e)\n\
                  stats\n\
                  quit\n";
    let run = |threads: usize| {
        par::with_thread_count(threads, || {
            let server = Server::new(&program, ServeConfig::default());
            transcript(&server, script)
        })
    };
    let one = run(1);
    assert!(one.contains("true") && one.contains("false"), "{one}");
    for threads in [2usize, 7] {
        assert_eq!(one, run(threads), "session responses diverged at {threads} threads");
    }
}

/// The checked-in golden transcript replays in-process: same commands,
/// same bytes. `ci.sh` replays the same fixture through the binary.
#[test]
fn golden_transcript_replays_in_process() {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/serve");
    let src = std::fs::read_to_string(format!("{dir}/session.dlg")).unwrap();
    let commands = std::fs::read_to_string(format!("{dir}/session.commands")).unwrap();
    let golden = std::fs::read_to_string(format!("{dir}/session.golden")).unwrap();
    let program = bddfc_core::parse_program(&src).unwrap();
    let server = Server::new(&program, ServeConfig::default());
    assert_eq!(transcript(&server, &commands), golden);
}

/// Runs the `bddfc-serve` binary with the given environment, stdin
/// closed, against the golden program fixture.
fn serve_with_env(envs: &[(&str, &str)]) -> Output {
    let mut cmd = Command::new(env!("CARGO"));
    cmd.args(["run", "-q", "-p", "bddfc-serve", "--bin", "bddfc-serve", "--"])
        .arg("tests/serve/session.dlg")
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .stdin(Stdio::null());
    for &(k, v) in envs {
        cmd.env(k, v);
    }
    cmd.output().expect("cargo run bddfc-serve")
}

/// Satellite: a bogus `BDDFC_JOIN` kills the service at startup, naming
/// the offending value — not silently falling back to a default engine.
#[test]
fn bogus_join_env_fails_loudly_at_startup() {
    let out = serve_with_env(&[("BDDFC_JOIN", "bogus")]);
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("BDDFC_JOIN must be `tuple` or `batch` (case-insensitive), got `bogus`"),
        "{stderr}"
    );
}

/// Satellite: non-numeric and zero `BDDFC_THREADS` are rejected loudly
/// instead of being treated as "no override".
#[test]
fn bad_threads_env_fails_loudly_at_startup() {
    for bad in ["abc", "0"] {
        let out = serve_with_env(&[("BDDFC_THREADS", bad)]);
        assert!(!out.status.success(), "BDDFC_THREADS={bad} must fail");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains(&format!("BDDFC_THREADS must be a positive integer, got `{bad}`")),
            "BDDFC_THREADS={bad}: {stderr}"
        );
    }
}

/// Case-insensitive `BDDFC_JOIN` values are accepted (satellite 1's
/// positive side), end to end through the binary.
#[test]
fn join_env_is_case_insensitive() {
    let out = serve_with_env(&[("BDDFC_JOIN", "TuPlE")]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
}
