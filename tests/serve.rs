//! Integration tests for `bddfc-serve`: the incremental chase service.
//!
//! Covers the PR's acceptance criteria end to end:
//! * the E13 workload answers an insert-then-query session without
//!   re-running already-applied chase rounds (obs round counters);
//! * interleaved insert/query/retract sessions are byte-identical at
//!   1, 2 and 7 worker threads;
//! * the golden transcript fixture under `tests/serve/` replays
//!   in-process;
//! * misconfigured `BDDFC_JOIN`/`BDDFC_THREADS` kill the binary at
//!   startup with messages naming the offending value.

use bddfc_core::obs::metrics::MetricsSnapshot;
use bddfc_core::obs::Memory;
use bddfc_core::{par, Atom, Program, Rule, Term, Theory, Vocabulary};
use bddfc_serve::{transcript, ServeConfig, Server};
use bddfc_zoo::generate::random_graph;
use std::process::{Command, Output, Stdio};

/// The transitive-closure theory `E(X,Y), E(Y,Z) -> E(X,Z)` over a
/// fresh vocabulary's binary `E`.
fn tc_program(voc: &mut Vocabulary) -> (Theory, bddfc_core::PredId) {
    let e = voc.pred("E", 2);
    let (x, y, z) = (voc.var("X"), voc.var("Y"), voc.var("Z"));
    let rule = Rule::single(
        vec![
            Atom::new(e, vec![Term::Var(x), Term::Var(y)]),
            Atom::new(e, vec![Term::Var(y), Term::Var(z)]),
        ],
        Atom::new(e, vec![Term::Var(x), Term::Var(z)]),
    );
    (Theory::new(vec![rule]), e)
}

/// `("chase", "round")` events seen so far — one per applied round.
fn rounds(sink: &Memory) -> u64 {
    sink.event_counts()
        .iter()
        .find(|(k, _)| *k == ("chase", "round"))
        .map_or(0, |&(_, n)| n)
}

/// Acceptance criterion: on the E13 workload (TC over
/// `random_graph(60, 180, 13)`), an insert re-fires only the delta —
/// the second query is answered without re-running the rounds the load
/// already applied, and queries themselves run zero chase rounds.
#[test]
fn e13_insert_then_query_reuses_applied_rounds() {
    let mut voc = Vocabulary::new();
    let graph = random_graph(&mut voc, 60, 180, 13);
    let (theory, _) = tc_program(&mut voc);
    let program = Program { voc, theory, instance: graph, queries: Vec::new() };

    let sink = Memory::new(1 << 16);
    let server = Server::with_sink(&program, ServeConfig::default(), &sink);
    let loaded = rounds(&sink);
    assert!(loaded >= 2, "the initial closure must run real rounds, got {loaded}");

    assert_eq!(transcript(&server, "query E(v0,v0)\n").trim(), "true");
    assert_eq!(rounds(&sink), loaded, "a query must run zero chase rounds");

    // A new node wired into the closed graph: the delta re-closes in a
    // couple of rounds instead of re-running the whole load.
    let t = transcript(&server, "insert E(u,v0).\n");
    assert!(t.starts_with("ok epoch=2"), "{t}");
    let delta = rounds(&sink) - loaded;
    assert!(
        delta >= 1 && delta < loaded,
        "insert must resume incrementally: {delta} delta rounds vs {loaded} at load"
    );

    let after_insert = rounds(&sink);
    assert_eq!(transcript(&server, "query E(u,v0)\n").trim(), "true");
    assert_eq!(
        rounds(&sink),
        after_insert,
        "the post-insert query must be answered from the resident instance"
    );
}

/// Interleaved insert/query/retract sessions produce byte-identical
/// responses at 1, 2 and 7 worker threads (the in-process override
/// behind `BDDFC_THREADS`).
#[test]
fn interleaved_sessions_are_byte_identical_across_thread_counts() {
    let mut voc = Vocabulary::new();
    let (theory, _) = tc_program(&mut voc);
    let program =
        Program { voc, theory, instance: bddfc_core::Instance::new(), queries: Vec::new() };
    let script = "insert E(a,b). E(b,c).\n\
                  query E(a,c)\n\
                  insert E(c,d). E(d,e).\n\
                  query E(a,e)\n\
                  retract E(b,c).\n\
                  query E(a,e)\n\
                  query E(c,e)\n\
                  stats\n\
                  quit\n";
    let run = |threads: usize| {
        par::with_thread_count(threads, || {
            let server = Server::new(&program, ServeConfig::default());
            transcript(&server, script)
        })
    };
    let one = run(1);
    assert!(one.contains("true") && one.contains("false"), "{one}");
    for threads in [2usize, 7] {
        assert_eq!(one, run(threads), "session responses diverged at {threads} threads");
    }
}

/// Satellite: `stats` answers one schema-versioned JSON line whose
/// shape is pinned here field by field.
#[test]
fn stats_is_one_schema_versioned_json_line() {
    let mut voc = Vocabulary::new();
    let (theory, _) = tc_program(&mut voc);
    let program =
        Program { voc, theory, instance: bddfc_core::Instance::new(), queries: Vec::new() };
    let server = Server::new(&program, ServeConfig::default());
    let t = transcript(&server, "insert E(a,b). E(b,c).\nquery E(a,c)\nstats\n");
    let stats = t.lines().last().unwrap();
    assert_eq!(
        stats,
        "{\"schema\":1,\"epoch\":1,\"facts\":3,\"base\":2,\"segments\":1,\
         \"rounds_total\":2,\"fixpoint\":true,\"inserts\":1,\"retracts\":0,\"queries\":1}",
        "{t}"
    );
}

/// Satellite: the `explain` protocol command is covered end to end,
/// including its per-command latency histogram bucket — two explains
/// (one resident, one not) land as two observations under
/// `command="explain"`, and the failed one counts as an error.
#[test]
fn explain_requests_hit_their_latency_histogram_bucket() {
    let mut voc = Vocabulary::new();
    let (theory, _) = tc_program(&mut voc);
    let program =
        Program { voc, theory, instance: bddfc_core::Instance::new(), queries: Vec::new() };
    let server = Server::new(&program, ServeConfig::default());
    let t = transcript(
        &server,
        "insert E(a,b). E(b,c).\nexplain E(a,c)\nexplain E(c,a)\nmetrics\n",
    );
    assert!(t.contains("ok depth=1"), "{t}");
    assert!(t.contains("err not resident: E(c,a)"), "{t}");

    let snap = server.metrics_snapshot().expect("metrics on by default");
    let explain = Some(("command", "explain"));
    assert_eq!(snap.counter("bddfc_requests_total", explain), 2);
    assert_eq!(snap.counter("bddfc_request_errors_total", explain), 1);
    assert_eq!(
        snap.histogram_count("bddfc_request_latency_ns", explain),
        2,
        "each explain must land one latency observation"
    );

    // The `metrics` protocol reply is one JSON line: deterministic
    // prefix first, every timing-derived datum in the trailing object.
    let mline = t.lines().find(|l| l.starts_with("{\"schema\":1,\"counters\"")).unwrap();
    assert!(mline.contains(",\"timing\":{"), "{mline}");
}

/// The timing-free projection of a Prometheus scrape: drops the
/// `_ns`-named families (the naming rule for timing-derived series)
/// and the `bddfc_slowlog_*` family (timing-dependent by nature).
fn deterministic_prometheus(snap: &MetricsSnapshot) -> String {
    snap.to_prometheus()
        .lines()
        .filter(|l| !l.contains("_ns") && !l.contains("bddfc_slowlog"))
        .collect::<Vec<_>>()
        .join("\n")
}

/// Acceptance criterion: metrics snapshots — the JSON command's
/// deterministic form and the Prometheus scrape with timing-derived
/// families excluded — are byte-identical at 1, 2 and 7 worker
/// threads, alongside the session transcript itself.
#[test]
fn metrics_snapshots_are_byte_identical_across_thread_counts() {
    let mut voc = Vocabulary::new();
    let (theory, _) = tc_program(&mut voc);
    let program =
        Program { voc, theory, instance: bddfc_core::Instance::new(), queries: Vec::new() };
    let script = "insert E(a,b). E(b,c).\n\
                  query E(a,c)\n\
                  insert E(c,d). E(d,e).\n\
                  explain E(a,e)\n\
                  retract E(b,c).\n\
                  query E(a,e)\n\
                  bogus\n\
                  stats\n\
                  quit\n";
    let run = |threads: usize| {
        par::with_thread_count(threads, || {
            let server = Server::new(&program, ServeConfig::default());
            let t = transcript(&server, script);
            let snap = server.metrics_snapshot().expect("metrics on by default");
            (t, snap.to_json_deterministic(), deterministic_prometheus(&snap))
        })
    };
    let one = run(1);
    assert!(one.1.starts_with("{\"schema\":1,\"counters\":{"), "{}", one.1);
    assert!(one.1.contains("bddfc_dred_overdeleted_total"), "{}", one.1);
    assert!(one.2.contains("bddfc_requests_total{command=\"query\"} 2"), "{}", one.2);
    assert!(one.2.contains("bddfc_chase_rounds_total"), "{}", one.2);
    for threads in [2usize, 7] {
        let other = run(threads);
        assert_eq!(one.0, other.0, "transcript diverged at {threads} threads");
        assert_eq!(one.1, other.1, "metrics JSON diverged at {threads} threads");
        assert_eq!(one.2, other.2, "Prometheus scrape diverged at {threads} threads");
    }
}

/// The slow-query log records threshold crossers with span trees and
/// serves them back through the `slowlog` protocol command.
#[test]
fn slowlog_records_and_dumps_threshold_crossers() {
    let mut voc = Vocabulary::new();
    let (theory, _) = tc_program(&mut voc);
    let program =
        Program { voc, theory, instance: bddfc_core::Instance::new(), queries: Vec::new() };
    // Threshold 0 ms: everything is slow.
    let config = ServeConfig { slow_ms: Some(0), ..ServeConfig::default() };
    let server = Server::new(&program, config);
    let t = transcript(&server, "insert E(a,b). E(b,c).\nquery E(a,c)\nslowlog\n");
    let lines: Vec<&str> = t.lines().collect();
    // insert + query recorded; the slowlog dump itself is not yet in
    // the ring it prints.
    assert_eq!(lines[2], "ok n=2", "{t}");
    assert!(lines[3].contains("\"command\":\"insert\""), "{t}");
    assert!(lines[3].contains("\"spans\":[") && lines[3].contains("\"rules\":["), "{t}");
    assert!(lines[4].contains("\"command\":\"query\""), "{t}");

    // A threshold nothing crosses records nothing.
    let quiet = Server::new(
        &program,
        ServeConfig { slow_ms: Some(60_000), ..ServeConfig::default() },
    );
    let t = transcript(&quiet, "insert E(a,b).\nslowlog\n");
    assert!(t.lines().nth(1) == Some("ok n=0"), "{t}");

    // Disabled log names the flag that turns it on.
    let off = Server::new(&program, ServeConfig::default());
    let t = transcript(&off, "slowlog\n");
    assert_eq!(t.trim(), "err slowlog disabled (start with --slow-ms)");
}

/// The `analyze` protocol command returns the load-time static
/// analysis as one JSON line: a termination certificate for the
/// (weakly acyclic) TC theory, a cost model, and lints — byte-identical
/// across thread counts and equal to the server's stored line.
#[test]
fn analyze_command_returns_one_json_line() {
    let mut voc = Vocabulary::new();
    let (theory, _) = tc_program(&mut voc);
    let program =
        Program { voc, theory, instance: bddfc_core::Instance::new(), queries: Vec::new() };
    let run = |threads: usize| {
        par::with_thread_count(threads, || {
            let server = Server::new(&program, ServeConfig::default());
            let t = transcript(&server, "insert E(a,b). E(b,c).\nanalyze\n");
            assert_eq!(t.lines().last(), Some(server.analysis_json()), "{t}");
            t
        })
    };
    let one = run(1);
    let line = one.lines().last().unwrap();
    assert!(line.starts_with("{\"schema\":1,\"program\":\"load\","), "{line}");
    assert!(!line.contains('\n'), "{line}");
    // Datalog TC is trivially weakly acyclic: a certificate must exist.
    assert!(line.contains("\"termination\":{"), "{line}");
    assert!(line.contains("\"cost\":{"), "{line}");
    for threads in [2usize, 7] {
        assert_eq!(one, run(threads), "analyze output diverged at {threads} threads");
    }
}

/// The checked-in golden transcript replays in-process: same commands,
/// same bytes. `ci.sh` replays the same fixture through the binary.
#[test]
fn golden_transcript_replays_in_process() {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/serve");
    let src = std::fs::read_to_string(format!("{dir}/session.dlg")).unwrap();
    let commands = std::fs::read_to_string(format!("{dir}/session.commands")).unwrap();
    let golden = std::fs::read_to_string(format!("{dir}/session.golden")).unwrap();
    let program = bddfc_core::parse_program(&src).unwrap();
    let server = Server::new(&program, ServeConfig::default());
    assert_eq!(transcript(&server, &commands), golden);
}

/// Runs the `bddfc-serve` binary with the given environment, stdin
/// closed, against the golden program fixture.
fn serve_with_env(envs: &[(&str, &str)]) -> Output {
    let mut cmd = Command::new(env!("CARGO"));
    cmd.args(["run", "-q", "-p", "bddfc-serve", "--bin", "bddfc-serve", "--"])
        .arg("tests/serve/session.dlg")
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .stdin(Stdio::null());
    for &(k, v) in envs {
        cmd.env(k, v);
    }
    cmd.output().expect("cargo run bddfc-serve")
}

/// Satellite: a bogus `BDDFC_JOIN` kills the service at startup, naming
/// the offending value — not silently falling back to a default engine.
#[test]
fn bogus_join_env_fails_loudly_at_startup() {
    let out = serve_with_env(&[("BDDFC_JOIN", "bogus")]);
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("BDDFC_JOIN must be `tuple` or `batch` (case-insensitive), got `bogus`"),
        "{stderr}"
    );
}

/// Satellite: non-numeric and zero `BDDFC_THREADS` are rejected loudly
/// instead of being treated as "no override".
#[test]
fn bad_threads_env_fails_loudly_at_startup() {
    for bad in ["abc", "0"] {
        let out = serve_with_env(&[("BDDFC_THREADS", bad)]);
        assert!(!out.status.success(), "BDDFC_THREADS={bad} must fail");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains(&format!("BDDFC_THREADS must be a positive integer, got `{bad}`")),
            "BDDFC_THREADS={bad}: {stderr}"
        );
    }
}

/// Case-insensitive `BDDFC_JOIN` values are accepted (satellite 1's
/// positive side), end to end through the binary.
#[test]
fn join_env_is_case_insensitive() {
    let out = serve_with_env(&[("BDDFC_JOIN", "TuPlE")]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
}
