//! Property-based tests on the core invariants, spanning crates, driven
//! by the deterministic harness in `bddfc_fuzz::proptest_lite`.

use bddfc::core::{hom, Fact};
use bddfc::prelude::*;
use bddfc_fuzz::proptest_lite::{ensure, ensure_eq, run_prop, Gen, PropResult};

const CASES: u64 = 48;

fn graph_of(pairs: &[(u8, u8)]) -> (Vocabulary, Instance) {
    let mut voc = Vocabulary::new();
    let e = voc.pred("E", 2);
    let mut inst = Instance::new();
    for &(a, b) in pairs {
        let ca = voc.constant(&format!("n{a}"));
        let cb = voc.constant(&format!("n{b}"));
        inst.insert(Fact::new(e, vec![ca, cb]));
    }
    (voc, inst)
}

/// Same edge list, but over anonymous (labelled-null) elements, so
/// type-based partitions are allowed to merge them.
fn anon_graph_of(pairs: &[(u8, u8)]) -> (Vocabulary, Instance) {
    let mut anon = Vocabulary::new();
    let e = anon.pred("E", 2);
    let mut inst = Instance::new();
    let mut map = std::collections::HashMap::new();
    for &(a, b) in pairs {
        let ca = *map.entry(a).or_insert_with(|| anon.fresh_null("x"));
        let cb = *map.entry(b).or_insert_with(|| anon.fresh_null("x"));
        inst.insert(Fact::new(e, vec![ca, cb]));
    }
    (anon, inst)
}

/// The chase result always contains the database and, on fixpoint,
/// models the theory.
#[test]
fn chase_is_sound() {
    run_prop("chase_is_sound", CASES, |g: &mut Gen| -> PropResult {
        let pairs = g.edges("pairs", 6, 12);
        let (mut voc, db) = graph_of(&pairs);
        let (theory, _, _) = bddfc::core::parse_into(
            "E(X,Y) -> exists Z . E(Y,Z). E(X,Y), E(Y,Z) -> E(X,Z).",
            &mut voc,
        )
        .unwrap();
        let res = chase(&db, &theory, &mut voc, ChaseConfig::rounds(30));
        ensure(res.instance.models(&db), "chase must contain the database")?;
        if res.is_fixpoint() {
            ensure(
                bddfc::core::satisfaction::satisfies_theory(&res.instance, &theory),
                "fixpoint must model the theory",
            )?;
        }
        Ok(())
    });
}

/// Restricted chase never produces more facts than the oblivious one.
#[test]
fn restricted_at_most_oblivious() {
    run_prop("restricted_at_most_oblivious", CASES, |g| {
        let pairs = g.edges("pairs", 5, 8);
        let (mut voc, db) = graph_of(&pairs);
        let (theory, _, _) =
            bddfc::core::parse_into("E(X,Y) -> exists Z . E(Y,Z).", &mut voc).unwrap();
        let (r, o) = bddfc::chase::chase_size_comparison(
            &db,
            &theory,
            &mut voc,
            ChaseConfig::rounds(5),
        );
        ensure(r <= o, &format!("restricted {r} > oblivious {o}"))
    });
}

/// Quotients are homomorphic images: every positive query true in the
/// original is true in the quotient.
#[test]
fn quotient_preserves_positive_queries() {
    run_prop("quotient_preserves_positive_queries", CASES, |g| {
        let pairs = g.edges("pairs", 6, 10);
        let qlen = g.usize_in("qlen", 1, 4);
        let (mut anon, inst2) = anon_graph_of(&pairs);
        let analyzer = TypeAnalyzer::new(&inst2, &mut anon, 2);
        let quotient = Quotient::new(&inst2, analyzer.partition(), &mut anon);
        let q = bddfc::zoo::path_query(&mut anon, qlen);
        if hom::satisfies_cq(&inst2, &q) {
            ensure(
                hom::satisfies_cq(&quotient.instance, &q),
                "quotient must preserve a satisfied positive query",
            )?;
        }
        Ok(())
    });
}

/// CQ subsumption is reflexive and respected by instance evaluation:
/// if general subsumes specific and an instance satisfies specific,
/// it satisfies general.
#[test]
fn subsumption_sound_for_evaluation() {
    run_prop("subsumption_sound_for_evaluation", CASES, |g| {
        let pairs = g.edges("pairs", 5, 8);
        let l1 = g.usize_in("l1", 1, 4);
        let l2 = g.usize_in("l2", 1, 4);
        let (_, inst) = graph_of(&pairs);
        let mut voc = Vocabulary::new();
        let _ = voc.pred("E", 2);
        let q1 = bddfc::zoo::path_query(&mut voc, l1);
        let q2 = bddfc::zoo::path_query(&mut voc, l2);
        ensure(bddfc::rewrite::subsumes(&q1, &q1), "subsumption must be reflexive")?;
        if bddfc::rewrite::subsumes(&q1, &q2) && hom::satisfies_cq(&inst, &q2) {
            ensure(
                hom::satisfies_cq(&inst, &q1),
                "subsuming query must hold wherever the subsumed one does",
            )?;
        }
        Ok(())
    });
}

/// Rewriting soundness: whenever the rewriting of a query holds in D,
/// the chase-based certain answer is also true.
#[test]
fn rewriting_sound() {
    run_prop("rewriting_sound", CASES, |g| {
        let pairs = g.edges("pairs", 5, 8);
        let qlen = g.usize_in("qlen", 1, 4);
        let (mut voc, db) = graph_of(&pairs);
        let (theory, _, _) = bddfc::core::parse_into(
            "P(X) -> exists Z . E(X,Z). E(X,Y) -> U(Y).",
            &mut voc,
        )
        .unwrap();
        let q = bddfc::zoo::path_query(&mut voc, qlen);
        let rw = rewrite_query(&q, &theory, &mut voc, RewriteConfig::default()).unwrap();
        ensure(rw.saturated, "rewriting must saturate on this theory")?;
        let by_rw = hom::satisfies_ucq(&db, &rw.ucq);
        let by_chase = certain_cq(&db, &theory, &mut voc, &q, ChaseConfig::rounds(20));
        if by_chase.is_decided() {
            ensure_eq(by_rw, by_chase.is_true(), "rewriting vs chase answer")?;
        }
        Ok(())
    });
}

/// Datalog saturation is idempotent and monotone.
#[test]
fn saturation_idempotent() {
    run_prop("saturation_idempotent", CASES, |g| {
        let pairs = g.edges("pairs", 6, 10);
        let (mut voc, db) = graph_of(&pairs);
        let (theory, _, _) =
            bddfc::core::parse_into("E(X,Y), E(Y,Z) -> E(X,Z).", &mut voc).unwrap();
        let s1 = saturate_datalog(&db, &theory);
        ensure(s1.instance.models(&db), "saturation must contain the database")?;
        let s2 = saturate_datalog(&s1.instance, &theory);
        ensure_eq(s2.instance.len(), s1.instance.len(), "saturation idempotence")?;
        ensure_eq(s2.derived, 0, "re-saturation derives nothing")
    });
}

/// The model finder returns genuine models, and with a forbidden
/// query the model avoids it.
#[test]
fn finder_models_are_models() {
    run_prop("finder_models_are_models", CASES, |g| {
        let pairs = g.edges("pairs", 3, 4);
        let (mut voc, db) = graph_of(&pairs);
        let (theory, _, _) =
            bddfc::core::parse_into("E(X,Y) -> exists Z . E(Y,Z).", &mut voc).unwrap();
        let out = find_model(&db, &theory, &mut voc, None, FinderConfig::size(6));
        if let SearchOutcome::Found(m) = out {
            ensure(
                bddfc::core::satisfaction::satisfies_theory(&m, &theory),
                "found model must satisfy the theory",
            )?;
            ensure(m.models(&db), "found model must contain the database")
        } else {
            Err("a model of ≤ 6 elements exists for any seed graph ≤ 3 nodes".to_string())
        }
    });
}

/// Parser round-trip: display then re-parse preserves rule shapes.
#[test]
fn parser_round_trip() {
    run_prop("parser_round_trip", CASES, |g| {
        let n_rules = g.usize_in("n_rules", 1, 6);
        let seed = g.u64_in("seed", 0, 1000);
        let mut voc = Vocabulary::new();
        let theory = bddfc::zoo::random_linear_theory(&mut voc, 3, n_rules, seed);
        let printed = theory.display(&voc).to_string();
        let mut voc2 = Vocabulary::new();
        let (theory2, _, _) = bddfc::core::parse_into(&printed, &mut voc2).unwrap();
        ensure_eq(theory2.len(), theory.len(), "rule count after round-trip")?;
        let printed2 = theory2.display(&voc2).to_string();
        ensure_eq(printed, printed2, "second print must be a fixpoint")
    });
}

/// Positive-type inclusion is a preorder on random structures.
#[test]
fn ptp_inclusion_is_preorder() {
    run_prop("ptp_inclusion_is_preorder", CASES, |g| {
        let pairs = g.edges("pairs", 5, 8);
        let (mut anon, inst) = anon_graph_of(&pairs);
        let analyzer = TypeAnalyzer::new(&inst, &mut anon, 3);
        let dom = inst.sorted_domain();
        for &d in &dom {
            ensure(
                analyzer.ptp_included_in(d, &inst, d),
                "ptp inclusion must be reflexive",
            )?;
        }
        if dom.len() >= 3 {
            let (x, y, z) = (dom[0], dom[1], dom[2]);
            if analyzer.ptp_included_in(x, &inst, y) && analyzer.ptp_included_in(y, &inst, z) {
                ensure(
                    analyzer.ptp_included_in(x, &inst, z),
                    "ptp inclusion must be transitive",
                )?;
            }
        }
        Ok(())
    });
}

/// The harness itself: failures must carry the case seed and the logged
/// generator inputs, and identical seeds must replay identical inputs.
#[test]
fn harness_reports_failing_inputs() {
    let caught = std::panic::catch_unwind(|| {
        run_prop("deliberate_failure", 10, |g| {
            let n = g.usize_in("n", 0, 100);
            ensure(n < 1000, "fine")?;
            Err("forced".to_string())
        });
    });
    let msg = match caught {
        Ok(()) => panic!("deliberately failing property did not fail"),
        Err(p) => *p.downcast::<String>().expect("panic message is a String"),
    };
    assert!(msg.contains("deliberate_failure"), "names the property: {msg}");
    assert!(msg.contains("case 0/10"), "names the case: {msg}");
    assert!(msg.contains("n = "), "prints the generator log: {msg}");
    assert!(msg.contains("forced"), "prints the failure reason: {msg}");
}

/// Determinism: the same property re-run draws the same inputs.
#[test]
fn harness_is_deterministic() {
    let mut first: Vec<String> = Vec::new();
    run_prop("determinism_probe", 5, |g| {
        let _ = g.edges("pairs", 6, 12);
        first.push(g.log.join(";"));
        Ok(())
    });
    let mut second: Vec<String> = Vec::new();
    run_prop("determinism_probe", 5, |g| {
        let _ = g.edges("pairs", 6, 12);
        second.push(g.log.join(";"));
        Ok(())
    });
    assert_eq!(first, second);
}
