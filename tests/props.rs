//! Property-based tests on the core invariants, spanning crates.

use bddfc::prelude::*;
use bddfc::core::{hom, Fact};
use proptest::prelude::*;

/// Strategy: a random edge list over `n` nodes.
fn edges(n: usize, max_edges: usize) -> impl Strategy<Value = Vec<(u8, u8)>> {
    prop::collection::vec((0..n as u8, 0..n as u8), 1..max_edges)
}

fn graph_of(pairs: &[(u8, u8)]) -> (Vocabulary, Instance) {
    let mut voc = Vocabulary::new();
    let e = voc.pred("E", 2);
    let mut inst = Instance::new();
    for &(a, b) in pairs {
        let ca = voc.constant(&format!("n{a}"));
        let cb = voc.constant(&format!("n{b}"));
        inst.insert(Fact::new(e, vec![ca, cb]));
    }
    (voc, inst)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The chase result always contains the database and, on fixpoint,
    /// models the theory.
    #[test]
    fn chase_is_sound(pairs in edges(6, 12)) {
        let (mut voc, db) = graph_of(&pairs);
        let (theory, _, _) = bddfc::core::parse_into(
            "E(X,Y) -> exists Z . E(Y,Z). E(X,Y), E(Y,Z) -> E(X,Z).",
            &mut voc,
        ).unwrap();
        let res = chase(&db, &theory, &mut voc, ChaseConfig::rounds(30));
        prop_assert!(res.instance.models(&db));
        if res.is_fixpoint() {
            prop_assert!(bddfc::core::satisfaction::satisfies_theory(&res.instance, &theory));
        }
    }

    /// Restricted chase never produces more facts than the oblivious one.
    #[test]
    fn restricted_at_most_oblivious(pairs in edges(5, 8)) {
        let (mut voc, db) = graph_of(&pairs);
        let (theory, _, _) = bddfc::core::parse_into(
            "E(X,Y) -> exists Z . E(Y,Z).",
            &mut voc,
        ).unwrap();
        let (r, o) = bddfc::chase::chase_size_comparison(
            &db, &theory, &mut voc, ChaseConfig::rounds(5),
        );
        prop_assert!(r <= o);
    }

    /// Quotients are homomorphic images: every positive query true in the
    /// original is true in the quotient.
    #[test]
    fn quotient_preserves_positive_queries(pairs in edges(6, 10), qlen in 1usize..4) {
        let (voc, inst) = graph_of(&pairs);
        // Make everything anonymous so the partition can merge.
        let mut anon = Vocabulary::new();
        let e = anon.pred("E", 2);
        let mut inst2 = Instance::new();
        let mut map = std::collections::HashMap::new();
        for f in inst.facts() {
            let a = *map.entry(f.args[0]).or_insert_with(|| anon.fresh_null("x"));
            let b = *map.entry(f.args[1]).or_insert_with(|| anon.fresh_null("x"));
            inst2.insert(Fact::new(e, vec![a, b]));
        }
        let analyzer = TypeAnalyzer::new(&inst2, &mut anon, 2);
        let quotient = Quotient::new(&inst2, analyzer.partition(), &mut anon);
        let q = bddfc::zoo::path_query(&mut anon, qlen);
        if hom::satisfies_cq(&inst2, &q) {
            prop_assert!(hom::satisfies_cq(&quotient.instance, &q));
        }
        let _ = voc;
    }

    /// CQ subsumption is reflexive and respected by instance evaluation:
    /// if general subsumes specific and an instance satisfies specific,
    /// it satisfies general.
    #[test]
    fn subsumption_sound_for_evaluation(pairs in edges(5, 8), l1 in 1usize..4, l2 in 1usize..4) {
        let (_, inst) = graph_of(&pairs);
        let mut voc = Vocabulary::new();
        let _ = voc.pred("E", 2);
        let q1 = bddfc::zoo::path_query(&mut voc, l1);
        let q2 = bddfc::zoo::path_query(&mut voc, l2);
        prop_assert!(bddfc::rewrite::subsumes(&q1, &q1));
        if bddfc::rewrite::subsumes(&q1, &q2) && hom::satisfies_cq(&inst, &q2) {
            prop_assert!(hom::satisfies_cq(&inst, &q1));
        }
    }

    /// Rewriting soundness: whenever the rewriting of a query holds in D,
    /// the chase-based certain answer is also true.
    #[test]
    fn rewriting_sound(pairs in edges(5, 8), qlen in 1usize..4) {
        let (mut voc, db) = graph_of(&pairs);
        let (theory, _, _) = bddfc::core::parse_into(
            "P(X) -> exists Z . E(X,Z). E(X,Y) -> U(Y).",
            &mut voc,
        ).unwrap();
        let q = bddfc::zoo::path_query(&mut voc, qlen);
        let rw = rewrite_query(&q, &theory, &mut voc, RewriteConfig::default()).unwrap();
        prop_assert!(rw.saturated);
        let by_rw = hom::satisfies_ucq(&db, &rw.ucq);
        let by_chase = certain_cq(&db, &theory, &mut voc, &q, ChaseConfig::rounds(20));
        if by_chase.is_decided() {
            prop_assert_eq!(by_rw, by_chase.is_true());
        }
    }

    /// Datalog saturation is idempotent and monotone.
    #[test]
    fn saturation_idempotent(pairs in edges(6, 10)) {
        let (mut voc, db) = graph_of(&pairs);
        let (theory, _, _) = bddfc::core::parse_into(
            "E(X,Y), E(Y,Z) -> E(X,Z).",
            &mut voc,
        ).unwrap();
        let s1 = saturate_datalog(&db, &theory);
        prop_assert!(s1.instance.models(&db));
        let s2 = saturate_datalog(&s1.instance, &theory);
        prop_assert_eq!(s2.instance.len(), s1.instance.len());
        prop_assert_eq!(s2.derived, 0);
    }

    /// The model finder returns genuine models, and with a forbidden
    /// query the model avoids it.
    #[test]
    fn finder_models_are_models(pairs in edges(3, 4)) {
        let (mut voc, db) = graph_of(&pairs);
        let (theory, _, _) = bddfc::core::parse_into(
            "E(X,Y) -> exists Z . E(Y,Z).",
            &mut voc,
        ).unwrap();
        let out = find_model(&db, &theory, &mut voc, None, FinderConfig::size(6));
        if let SearchOutcome::Found(m) = out {
            prop_assert!(bddfc::core::satisfaction::satisfies_theory(&m, &theory));
            prop_assert!(m.models(&db));
        } else {
            prop_assert!(false, "a model of ≤ 6 elements exists for any seed graph ≤ 3 nodes");
        }
    }

    /// Parser round-trip: display then re-parse preserves rule shapes.
    #[test]
    fn parser_round_trip(n_rules in 1usize..6, seed in 0u64..1000) {
        let mut voc = Vocabulary::new();
        let theory = bddfc::zoo::random_linear_theory(&mut voc, 3, n_rules, seed);
        let printed = theory.display(&voc).to_string();
        let mut voc2 = Vocabulary::new();
        let (theory2, _, _) = bddfc::core::parse_into(&printed, &mut voc2).unwrap();
        prop_assert_eq!(theory2.len(), theory.len());
        let printed2 = theory2.display(&voc2).to_string();
        prop_assert_eq!(printed, printed2);
    }

    /// Positive-type inclusion is a preorder on random structures.
    #[test]
    fn ptp_inclusion_is_preorder(pairs in edges(5, 8)) {
        let mut anon = Vocabulary::new();
        let e = anon.pred("E", 2);
        let mut inst = Instance::new();
        let mut map = std::collections::HashMap::new();
        for &(a, b) in &pairs {
            let ca = *map.entry(a).or_insert_with(|| anon.fresh_null("x"));
            let cb = *map.entry(b).or_insert_with(|| anon.fresh_null("x"));
            inst.insert(Fact::new(e, vec![ca, cb]));
        }
        let analyzer = TypeAnalyzer::new(&inst, &mut anon, 3);
        let dom = inst.sorted_domain();
        // Reflexivity.
        for &d in &dom {
            prop_assert!(analyzer.ptp_included_in(d, &inst, d));
        }
        // Transitivity on the first three elements (if present).
        if dom.len() >= 3 {
            let (x, y, z) = (dom[0], dom[1], dom[2]);
            if analyzer.ptp_included_in(x, &inst, y) && analyzer.ptp_included_in(y, &inst, z) {
                prop_assert!(analyzer.ptp_included_in(x, &inst, z));
            }
        }
    }
}
