//! Shared support code for the integration-test crates. Each test file
//! under `tests/` is its own crate and pulls this in with `mod support;`,
//! so not every item is used by every crate.
#![allow(dead_code)]

pub mod proptest_lite;
