//! Null-sink overhead guard: the telemetry layer in `bddfc_core::obs`
//! promises that a `Null` sink costs nothing — event construction sits
//! behind `if S::ENABLED` with `ENABLED = false` as a compile-time
//! constant, so the instrumented chase must run at the speed of an
//! uninstrumented one. This test measures that claim on an E13-style
//! workload (transitive closure over a seeded random graph, the
//! chase-throughput bench shape) and fails if the median wall time of
//! the public `chase` entry point exceeds the hand-stripped baseline
//! kernel (`chase_uninstrumented_baseline`) by more than 5%.
//!
//! Timing assertions are inherently machine-sensitive, so the test
//! self-skips (with a printed notice) in debug builds, where the
//! optimizer has not erased the abstractions the contract is about —
//! run it via `cargo test --release --test overhead`.

use bddfc::chase::engine::chase_uninstrumented_baseline;
use bddfc::chase::{chase, ChaseConfig};
use bddfc::core::{parse_rule, Program, Theory, Vocabulary};
use bddfc_serve::{transcript, ServeConfig, Server};
use std::time::{Duration, Instant};

/// Serializes the timed sections: two timing tests racing each other
/// for cores would measure contention, not overhead.
static TIMING_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

/// Median-of-`n` wall time of `f`, after one warmup run.
fn median_time<T>(n: usize, mut f: impl FnMut() -> T) -> Duration {
    std::hint::black_box(f());
    let mut times: Vec<Duration> = (0..n)
        .map(|_| {
            let t0 = Instant::now();
            std::hint::black_box(f());
            t0.elapsed()
        })
        .collect();
    times.sort_unstable();
    times[times.len() / 2]
}

#[test]
fn null_sink_chase_is_within_five_percent_of_uninstrumented_baseline() {
    if cfg!(debug_assertions) {
        println!(
            "skipping overhead assertion in a debug build; \
             run `cargo test --release --test overhead` to measure it"
        );
        return;
    }

    // E13 shape: transitive closure on a seeded random graph — a
    // terminating, fact-heavy workload where per-round bookkeeping
    // would show up if it were not compiled out.
    let mut voc = Vocabulary::new();
    let theory = Theory::new(vec![
        parse_rule("E(X,Y), E(Y,Z) -> E(X,Z)", &mut voc).unwrap(),
    ]);
    let db = bddfc::zoo::random_graph(&mut voc, 60, 180, 13);
    let config = ChaseConfig { max_rounds: 8, max_facts: 200_000, ..Default::default() };

    let _timing = TIMING_LOCK.lock().unwrap();

    // Sanity: both kernels compute the same instance before we time them.
    let instrumented = chase(&db, &theory, &mut voc.clone(), config);
    let baseline = chase_uninstrumented_baseline(&db, &theory, &mut voc.clone(), config);
    assert_eq!(instrumented.instance, baseline, "kernels diverged; timing is meaningless");

    // Timing noise swamps a 5% margin on a loaded machine, so take the
    // best (smallest) instrumented/baseline ratio over a few attempts
    // and only fail when *every* attempt exceeds the margin.
    const ATTEMPTS: usize = 3;
    const ITERS: usize = 7;
    let mut best_ratio = f64::INFINITY;
    for _ in 0..ATTEMPTS {
        let t_base =
            median_time(ITERS, || chase_uninstrumented_baseline(&db, &theory, &mut voc.clone(), config));
        let t_inst = median_time(ITERS, || chase(&db, &theory, &mut voc.clone(), config));
        let ratio = t_inst.as_secs_f64() / t_base.as_secs_f64();
        best_ratio = best_ratio.min(ratio);
        if best_ratio <= 1.05 {
            break;
        }
    }
    assert!(
        best_ratio <= 1.05,
        "Null-sink chase is {:.1}% slower than the uninstrumented baseline \
         (limit 5%); the obs layer is leaking cost onto the hot path",
        (best_ratio - 1.0) * 100.0
    );
}

/// The metrics registry promises the serve request path stays cheap:
/// shard-local accumulation, one merge per request. This pins the cost
/// of leaving metrics on (the default) to within 5% of a
/// metrics-disabled server on the E13 query path.
#[test]
fn serve_request_path_with_metrics_is_within_five_percent_of_disabled() {
    if cfg!(debug_assertions) {
        println!(
            "skipping overhead assertion in a debug build; \
             run `cargo test --release --test overhead` to measure it"
        );
        return;
    }

    // E13 shape again: TC over a seeded random graph, loaded once per
    // server; the timed section is a query-heavy session (the request
    // path the registry instruments).
    let mut voc = Vocabulary::new();
    let theory = Theory::new(vec![
        parse_rule("E(X,Y), E(Y,Z) -> E(X,Z)", &mut voc).unwrap(),
    ]);
    let instance = bddfc::zoo::random_graph(&mut voc, 60, 180, 13);
    let program = Program { voc, theory, instance, queries: Vec::new() };
    let script: String =
        "query E(v0,v1)\nquery E(v1,v0)\nquery E(v2,v3)\nquery E(v0,v0)\n".repeat(64);

    let _timing = TIMING_LOCK.lock().unwrap();

    let on = Server::new(&program, ServeConfig::default());
    let off = Server::new(&program, ServeConfig { metrics: false, ..ServeConfig::default() });
    // Both servers answer identically before we time them.
    assert_eq!(transcript(&on, &script), transcript(&off, &script));

    const ATTEMPTS: usize = 3;
    const ITERS: usize = 7;
    let mut best_ratio = f64::INFINITY;
    for _ in 0..ATTEMPTS {
        let t_off = median_time(ITERS, || transcript(&off, &script));
        let t_on = median_time(ITERS, || transcript(&on, &script));
        let ratio = t_on.as_secs_f64() / t_off.as_secs_f64();
        best_ratio = best_ratio.min(ratio);
        if best_ratio <= 1.05 {
            break;
        }
    }
    assert!(
        best_ratio <= 1.05,
        "serve requests with metrics on are {:.1}% slower than with metrics off \
         (limit 5%); the registry is leaking cost onto the request path",
        (best_ratio - 1.0) * 100.0
    );
}
