//! Integration tests pinning, per experiment id of DESIGN.md, the
//! checkable claims each example of the paper makes.

use bddfc::prelude::*;
use bddfc::types::check_conservative;
use bddfc_core::fxhash::FxHashSet;

/// E1 — Example 1: the chase of D = {E(a,b)} is an infinite E-chain
/// (one new element per round); the 3-cycle image M′ is *not* a model
/// (the triangle rule fires) and Chase(M′, T) diverges.
#[test]
fn e1_triangle_collapse_diverges() {
    let prog = bddfc::zoo::example1();
    let mut voc = prog.voc.clone();

    let res = chase(&prog.instance, &prog.theory, &mut voc, ChaseConfig::rounds(10));
    assert_eq!(res.instance.len(), 11); // E-chain only, one edge per round
    let u = voc.find_pred("U").unwrap();
    assert!(res.instance.facts_with_pred(u).is_empty());

    // M' = the 3-cycle: a homomorphic image of the chase (parsed into the
    // *same* vocabulary so predicate ids line up)…
    let mut voc2 = prog.voc.clone();
    let (_, m_prime, _) =
        bddfc::core::parse_into("E(a,b). E(b,c). E(c,a).", &mut voc2).unwrap();
    // …that is not a model of T: the triangle rule is violated,
    assert!(!bddfc::core::satisfaction::satisfies_theory(&m_prime, &prog.theory));
    // …and chasing it diverges: U-chains keep growing.
    let res2 = chase(&m_prime, &prog.theory, &mut voc2, ChaseConfig::rounds(12));
    assert!(!res2.is_fixpoint());
    let u2 = voc2.find_pred("U").unwrap();
    assert_eq!(res2.instance.facts_with_pred(u2).len(), 3 * 12);
}

/// E2 — Example 2: ptp₂ of `a` agrees between the chain and the
/// triangle; ptp₃ differs (the 3-cycle query appears).
#[test]
fn e2_types_of_chain_vs_triangle() {
    let mut voc = Vocabulary::new();
    // Anonymous chain from a (a named, rest nulls — as in the paper,
    // where only D's elements are named).
    let e = voc.pred("E", 2);
    let u = voc.pred("U", 2);
    let _ = u;
    let a = voc.constant("a");
    let mut chain_inst = Instance::new();
    let mut prev = a;
    for _ in 0..8 {
        let next = voc.fresh_null("c");
        chain_inst.insert(bddfc::core::Fact::new(e, vec![prev, next]));
        prev = next;
    }
    // Triangle through a with anonymous b', c'.
    let mut tri = Instance::new();
    let b = voc.fresh_null("b");
    let c = voc.fresh_null("c");
    tri.insert(bddfc::core::Fact::new(e, vec![a, b]));
    tri.insert(bddfc::core::Fact::new(e, vec![b, c]));
    tri.insert(bddfc::core::Fact::new(e, vec![c, a]));

    // ptp₂(chain, a) ⊆ ptp₂(triangle, a): the quotient direction, always
    // automatic. (Example 2 states the two ptp₂ are *equal*; read
    // literally that is loose — the triangle adds an edge *into* a, and
    // the 2-variable query "∃x E(x,a)" sees it. The paper only uses the
    // n = 3 difference, which we pin below. See EXPERIMENTS.md, E2.)
    let an2 = TypeAnalyzer::new(&chain_inst, &mut voc, 2);
    assert!(an2.ptp_included_in(a, &tri, a));
    let an2t = TypeAnalyzer::new(&tri, &mut voc, 2);
    assert!(!an2t.ptp_included_in(a, &chain_inst, a));
    // Restricted to out-edges only, the ptp₂'s agree: drop E(c,a).
    let mut tri_out = Instance::new();
    tri_out.insert(bddfc::core::Fact::new(e, vec![a, b]));
    tri_out.insert(bddfc::core::Fact::new(e, vec![b, c]));
    let an2o = TypeAnalyzer::new(&tri_out, &mut voc, 2);
    assert!(an2o.ptp_included_in(a, &chain_inst, a));

    // ptp₃ differs: the triangle contains the 3-cycle query at a.
    let an3t = TypeAnalyzer::new(&tri, &mut voc, 3);
    assert!(!an3t.ptp_included_in(a, &chain_inst, a));
    // The chain types still embed into the triangle.
    let an3c = TypeAnalyzer::new(&chain_inst, &mut voc, 3);
    assert!(an3c.ptp_included_in(a, &tri, a));
}

/// E3 — Example 3: the quotient of the anonymous chain has a self-loop
/// class, and the positive 1-type of the loop class is *not* the type of
/// any chain element (conservativity fails without colors).
#[test]
fn e3_uncolored_chain_quotient() {
    let mut voc = Vocabulary::new();
    let (chain_inst, elems) = bddfc::zoo::anonymous_chain(&mut voc, 14);
    let n = 3;
    let analyzer = TypeAnalyzer::new(&chain_inst, &mut voc, n);
    let quotient = Quotient::new(&chain_inst, analyzer.partition(), &mut voc);
    // 2(n−1)+1 classes on a finite prefix (both rims distinguished).
    assert_eq!(quotient.class_count(), 2 * (n - 1) + 1);
    let e = voc.find_pred("E").unwrap();
    let interior = quotient.project(elems[7]);
    assert!(quotient
        .instance
        .contains(&bddfc::core::Fact::new(e, vec![interior, interior])));
    // ∃y E(y,y) is in the loop class's ptp₁ but in no chain element's.
    let q = parse_query("E(W,W)", &mut voc).unwrap();
    assert!(bddfc::core::hom::satisfies_cq(&quotient.instance, &q));
    assert!(!bddfc::core::hom::satisfies_cq(&chain_inst, &q));
}

/// E4 — Example 4: with the natural coloring, some n makes the quotient
/// conservative up to size m; and the conservative quotient of the chain
/// is strictly smaller than the chain.
#[test]
fn e4_colored_chain_is_conservative() {
    let mut voc = Vocabulary::new();
    let (chain_inst, _) = bddfc::zoo::anonymous_chain(&mut voc, 20);
    let m = 2;
    let (n, check) = find_conservative_n(&chain_inst, &mut voc, m, 2..=6)
        .expect("Main Lemma: some n works");
    assert!(check.is_conservative());
    assert!(check.quotient.class_count() < chain_inst.domain_size());
    assert!(n <= 4);
}

/// E5 — Example 6 / Remark 3: the total order is not conservative for
/// any coloring at size 1 (a self-loop appears); Remark 3's theory
/// satisfies (♠3) — all small queries already true — while failing (♠2).
#[test]
fn e5_total_order_not_conservative() {
    // A strict total order on 8 anonymous elements.
    let mut voc = Vocabulary::new();
    let lt = voc.pred("Lt", 2);
    let elems: Vec<_> = (0..8).map(|_| voc.fresh_null("o")).collect();
    let mut inst = Instance::new();
    for i in 0..8 {
        for j in (i + 1)..8 {
            inst.insert(bddfc::core::Fact::new(lt, vec![elems[i], elems[j]]));
        }
    }
    // Even the *natural* coloring cannot be conservative at size 1 here
    // while identifying anything: with few enough hues some pair merges
    // and Lt(x,x) appears. We check: no n in range yields a conservative
    // quotient that actually shrinks the structure.
    let sigma: FxHashSet<_> = inst.used_preds().collect();
    let coloring = natural_coloring(&inst, &mut voc, 1);
    let mut shrinking_conservative = false;
    for n in 1..=3 {
        let check = check_conservative(&inst, &coloring, &mut voc, n, 1, &sigma);
        if check.is_conservative() && check.quotient.class_count() < 8 {
            shrinking_conservative = true;
        }
    }
    assert!(!shrinking_conservative);
}

/// E6 — Examples 7/8 + Lemma 5: the skeleton quotient's only R-atoms are
/// diagonal; saturation derives off-diagonal R-atoms without creating
/// elements; the pipeline certifies the final model.
#[test]
fn e6_example7_saturation_and_lemma5() {
    let prog = bddfc::zoo::example7();
    let mut voc = prog.voc.clone();
    let query = parse_query("R(X,Y), E(X,Y)", &mut voc).unwrap();
    let out = finite_countermodel(
        &prog.instance,
        &prog.theory,
        &query,
        &mut voc,
        FcConfig::default(),
    );
    let cert = out.model().expect("Theorem 2");
    assert!(cert.lemma5_no_new_elements, "Lemma 5: no new elements");
    // The model has off-diagonal R-atoms (Example 8's observation).
    let r = voc.find_pred("R").unwrap();
    let off_diag = cert
        .model
        .facts_with_pred(r)
        .iter()
        .any(|&i| {
            let f = cert.model.fact(i);
            f.args[0] != f.args[1]
        });
    assert!(off_diag, "datalog saturation derived off-diagonal R-atoms");
    let failures =
        certify_countermodel(&cert.model, &prog.instance, &prog.theory, &query, &voc);
    assert!(failures.is_empty());
}

/// E7 — Example 9: the quotient of the F/G tree contains an undirected
/// 4-cycle but no short *directed* cycle (Lemma 9), and the pipeline
/// still certifies a countermodel.
#[test]
fn e7_example9_undirected_cycles_are_harmless() {
    let prog = bddfc::zoo::example9();
    let mut voc = prog.voc.clone();
    let query = parse_query("F(X,X)", &mut voc).unwrap();
    let out = finite_countermodel(
        &prog.instance,
        &prog.theory,
        &query,
        &mut voc,
        FcConfig::default(),
    );
    let cert = out.model().expect("Theorem 2 on the tree theory");
    // No directed F-loop (that is the query), and no directed 2-cycle
    // via F on distinct elements either — Lemma 9 for small m.
    let q2 = parse_query("F(X,Y), F(Y,X)", &mut voc).unwrap();
    assert!(!bddfc::core::hom::satisfies_cq(&cert.model, &q2));
    // But an undirected "diamond" (Example 9's 4-cycle) exists: two
    // distinct elements sharing an F-child and a G-child pattern.
    let diamond = parse_query("F(X1,Y1), F(X2,Y1), G(X2,Y2), G(X1,Y2)", &mut voc).unwrap();
    assert!(
        bddfc::core::hom::satisfies_cq(&cert.model, &diamond),
        "the quotient folds the tree into undirected cycles"
    );
}

/// E9 — §5.5: the notorious example has no countermodel up to size 4,
/// while the chase prefix never satisfies the query.
#[test]
fn e9_notorious_example_not_fc() {
    let prog = bddfc::zoo::notorious();
    let mut voc = prog.voc.clone();
    let q = &prog.queries[0];
    // Chase prefix: query never becomes true.
    let res = chase(&prog.instance, &prog.theory, &mut voc, ChaseConfig::rounds(12));
    assert!(!bddfc::core::hom::satisfies_cq(&res.instance, q));
    // Finite models: exhaustive search up to 4 elements finds none.
    let out = countermodel(&prog.instance, &prog.theory, &mut voc, q, 4);
    assert_eq!(out, SearchOutcome::NoModelWithin(4));
}

/// E9b — §5.5 intro: the order theory defines an ordering and is not FC.
#[test]
fn e9b_order_theory_not_fc() {
    let prog = bddfc::zoo::order_theory();
    let mut voc = prog.voc.clone();
    let q = &prog.queries[0];
    let res = chase(&prog.instance, &prog.theory, &mut voc, ChaseConfig::rounds(8));
    assert!(!bddfc::core::hom::satisfies_cq(&res.instance, q));
    let out = countermodel(&prog.instance, &prog.theory, &mut voc, q, 4);
    assert_eq!(out, SearchOutcome::NoModelWithin(4));
}

/// E10 — §5.6: the guarded→binary translation emits a binary theory in
/// the Theorem 3 fragment.
#[test]
fn e10_guarded_translation_shape() {
    let mut voc = Vocabulary::new();
    let (theory, _, _) = bddfc::core::parse_into(
        "R(X,Y,Z) -> exists W . S(Y,Z,W).
         S(X,Y,Z), P(X) -> P(Z).",
        &mut voc,
    )
    .unwrap();
    let tr = guarded_to_binary(&theory, &mut voc).unwrap();
    assert!(bddfc::classes::is_binary(&tr.theory, &voc));
    assert!(bddfc::classes::is_theorem3_fragment(&tr.theory));
}

/// E11 — §5.2/§5.3: reductions preserve certain answers.
#[test]
fn e11_reductions_preserve_certain_answers() {
    // Ternary reduction.
    let mut voc = Vocabulary::new();
    let (theory, db, _) = bddfc::core::parse_into(
        "P(X,Y,Z,X) -> exists T . R(X,Y,Z,T).
         R(X,Y,Z,T) -> S(X,T).
         P(a,b,c,a).",
        &mut voc,
    )
    .unwrap();
    let red = to_ternary(&theory, &mut voc);
    let db_t = red.translate_instance(&db, &mut voc);
    let q = parse_query("S(a,W)", &mut voc).unwrap();
    let q_t = red.translate_query(&q, &mut voc);
    let orig = certain_cq(&db, &theory, &mut voc.clone(), &q, ChaseConfig::rounds(8));
    let new = certain_cq(&db_t, &red.theory, &mut voc.clone(), &q_t, ChaseConfig::rounds(16));
    assert!(orig.is_true() && new.is_true());

    // Multi-head elimination.
    let mut voc2 = Vocabulary::new();
    let (theory2, db2, _) = bddfc::core::parse_into(
        "P(X) -> E(X,Z), U(Z). P(a).",
        &mut voc2,
    )
    .unwrap();
    let single = bddfc::classes::eliminate_multi_heads(&theory2, &mut voc2);
    let q2 = parse_query("E(a,W), U(W)", &mut voc2).unwrap();
    let orig = certain_cq(&db2, &theory2, &mut voc2.clone(), &q2, ChaseConfig::rounds(6));
    let new = certain_cq(&db2, &single, &mut voc2.clone(), &q2, ChaseConfig::rounds(12));
    assert!(orig.is_true() && new.is_true());
}

/// E12 — Definition 2: rewriting-based and chase-based certain answers
/// agree across a matrix of BDD theories, instances and queries.
#[test]
fn e12_rewriting_chase_agreement() {
    let theories = [
        "P(X) -> exists Z . E(X,Z). E(X,Y) -> U(Y).",
        "A(X) -> B(X). B(X) -> exists Z . E(X,Z). E(X,Y) -> exists W . E(Y,W).",
    ];
    let dbs = ["P(a).", "E(a,b). P(b).", "A(a). E(b,b).", "U(c)."];
    let queries = ["U(W)", "E(X1,X2), E(X2,X3)", "P(W), E(W,V)", "B(W)"];
    for t_src in theories {
        for db_src in dbs {
            for q_src in queries {
                let mut voc = Vocabulary::new();
                let (theory, _, _) = bddfc::core::parse_into(t_src, &mut voc).unwrap();
                let (_, db, _) = bddfc::core::parse_into(db_src, &mut voc).unwrap();
                let q = parse_query(q_src, &mut voc).unwrap();
                let via_chase =
                    certain_cq(&db, &theory, &mut voc.clone(), &q, ChaseConfig::rounds(16));
                let via_rw = bddfc::rewrite::certainly_entailed_rewriting(
                    &db,
                    &theory,
                    &mut voc,
                    &q,
                    RewriteConfig::default(),
                );
                if let (Some(rw), true) = (via_rw, via_chase.is_decided()) {
                    assert_eq!(
                        rw,
                        via_chase.is_true(),
                        "disagreement: T={t_src} D={db_src} Q={q_src}"
                    );
                }
            }
        }
    }
}

/// E15 — Lemma 13: a bounded-degree binary structure admits a
/// conservative coloring (radius-based hues).
#[test]
fn e15_bounded_degree_conservative() {
    // The §5.5 chase shape: chain plus R-chords — bounded degree.
    let mut voc = Vocabulary::new();
    let e = voc.pred("E", 2);
    let r = voc.pred("R", 2);
    let elems: Vec<_> = (0..16).map(|_| voc.fresh_null("x")).collect();
    let mut inst = Instance::new();
    for i in 0..15 {
        inst.insert(bddfc::core::Fact::new(e, vec![elems[i], elems[i + 1]]));
    }
    for i in 0..8 {
        inst.insert(bddfc::core::Fact::new(r, vec![elems[i], elems[2 * i]]));
    }
    let m = 2;
    let found = find_conservative_n(&inst, &mut voc, m, 2..=6);
    assert!(found.is_some(), "Lemma 13: bounded degree ⟹ ptp-conservative");
}

/// E16 — Conjecture 2: the order theory defines an ordering, the
/// notorious example does not (yet neither is FC — see E9).
#[test]
fn e16_order_probe() {
    let order = bddfc::zoo::order_theory();
    let mut voc = order.voc.clone();
    let w = order_probe(&order.instance, &order.theory, &mut voc, 10, 6)
        .expect("the order theory defines an ordering");
    assert!(w.chain.len() >= 6);

    let notorious = bddfc::zoo::notorious();
    let mut voc2 = notorious.voc.clone();
    assert!(
        order_probe(&notorious.instance, &notorious.theory, &mut voc2, 10, 6).is_none(),
        "the notorious example defines no ordering (Conjecture 2's 'only if' fails)"
    );
}

/// E17 — Section 4: the query-shape trichotomy and the normalization
/// measure.
#[test]
fn e17_query_shapes_and_measure() {
    use bddfc::rewrite::{find_fork, measure, resolve_fork_with};
    let mut voc = Vocabulary::new();
    let p = voc.pred("P", 2);
    let tree = parse_query("E(X,Y), E(Y,Z)", &mut voc).unwrap();
    assert_eq!(shape(&tree), QueryShape::UndirectedTree);
    let cycle = parse_query("E(X,Y), E(Y,X)", &mut voc).unwrap();
    assert_eq!(shape(&cycle), QueryShape::DirectedCycle);
    let diamond = parse_query("F(X1,Y1), F(X2,Y1), G(X2,Y2), G(X1,Y2)", &mut voc).unwrap();
    assert_eq!(shape(&diamond), QueryShape::UndirectedCycleOnly);
    let fork = find_fork(&diamond).expect("(♥) pattern present");
    let resolved = resolve_fork_with(&diamond, &fork, p);
    assert!(measure(&resolved) < measure(&diamond), "Lemma 10's measure decreases");
}
