//! Edge-case and robustness tests across crates: wider arities, constants
//! in awkward places, empty inputs, budget boundaries.

use bddfc::prelude::*;
use bddfc::core::{hom, Fact};

#[test]
fn ternary_homomorphisms() {
    let prog = parse_program(
        "R(a,b,c). R(b,c,a). R(c,a,b).
         ?- R(X,Y,Z), R(Y,Z,X).",
    )
    .unwrap();
    assert!(hom::satisfies_cq(&prog.instance, &prog.queries[0]));
    // The diagonal does not hold.
    let mut voc = prog.voc.clone();
    let diag = parse_query("R(X,X,X)", &mut voc).unwrap();
    assert!(!hom::satisfies_cq(&prog.instance, &diag));
}

#[test]
fn chase_with_ternary_tgds() {
    let prog = parse_program(
        "P(X,Y) -> exists Z . R(X,Y,Z).
         R(X,Y,Z) -> P(Y,Z).
         P(a,b).",
    )
    .unwrap();
    let mut voc = prog.voc.clone();
    let res = chase(&prog.instance, &prog.theory, &mut voc, ChaseConfig::rounds(6));
    let r = voc.find_pred("R").unwrap();
    // Rounds 1,3,5 produce R-atoms (P alternates with R).
    assert_eq!(res.instance.facts_with_pred(r).len(), 3);
}

#[test]
fn empty_database_chases_to_empty() {
    let prog = parse_program("E(X,Y) -> exists Z . E(Y,Z).").unwrap();
    let mut voc = prog.voc.clone();
    let res = chase(&Instance::new(), &prog.theory, &mut voc, ChaseConfig::default());
    assert!(res.is_fixpoint());
    assert!(res.instance.is_empty());
}

#[test]
fn constants_in_rule_bodies_through_pipeline() {
    // A rule anchored on a specific constant.
    let prog = parse_program(
        "E(a,Y) -> exists Z . E(Y,Z).
         E(a,b).",
    )
    .unwrap();
    let mut voc = prog.voc.clone();
    let q = parse_query("E(X,X)", &mut voc).unwrap();
    let out = finite_countermodel(&prog.instance, &prog.theory, &q, &mut voc, FcConfig::default());
    // Only b demands a successor; later elements do not (their parent is
    // not a) — the chase terminates? No: E(a,·) only matches the a-edge,
    // so Chase adds one witness for b and stops. Fast path.
    let cert = out.model().expect("terminating chase is the model");
    assert!(cert.lemma5_no_new_elements);
    let failures = certify_countermodel(&cert.model, &prog.instance, &prog.theory, &q, &voc);
    assert!(failures.is_empty());
}

#[test]
fn pipeline_handles_ground_queries() {
    let prog = parse_program("E(X,Y) -> exists Z . E(Y,Z). E(a,b).").unwrap();
    let mut voc = prog.voc.clone();
    // Ground query: is the specific edge E(b,a) certain? No — countermodel.
    let q = parse_query("E(b,a)", &mut voc).unwrap();
    let out = finite_countermodel(&prog.instance, &prog.theory, &q, &mut voc, FcConfig::default());
    let cert = out.model().unwrap_or_else(|| panic!("countermodel: {out:?}"));
    let failures = certify_countermodel(&cert.model, &prog.instance, &prog.theory, &q, &voc);
    assert!(failures.is_empty());
}

#[test]
fn pipeline_multiple_database_constants() {
    let prog = parse_program(
        "E(X,Y) -> exists Z . E(Y,Z).
         E(a,b). E(c,d). E(d,a).",
    )
    .unwrap();
    let mut voc = prog.voc.clone();
    let q = parse_query("E(X,X)", &mut voc).unwrap();
    let out = finite_countermodel(&prog.instance, &prog.theory, &q, &mut voc, FcConfig::default());
    let cert = out.model().unwrap_or_else(|| panic!("countermodel: {out:?}"));
    // All four named constants survive into the model (Remark 1 keeps
    // them distinct through the quotient).
    for name in ["a", "b", "c", "d"] {
        let c = voc.find_const(name).unwrap();
        assert!(cert.model.in_domain(c), "constant {name} lost");
    }
}

#[test]
fn finder_with_answer_variable_query() {
    // Forbidden queries are Boolean (free vars read existentially).
    let prog = parse_program("E(a,b). ?(X)- E(X,b).").unwrap();
    let mut voc = prog.voc.clone();
    let out = countermodel(&prog.instance, &Default::default(), &mut voc, &prog.queries[0], 3);
    // D itself satisfies the query: no countermodel containing D exists.
    assert_eq!(out, SearchOutcome::NoModelWithin(3));
}

#[test]
fn instance_element_index_is_deduplicated() {
    let mut voc = Vocabulary::new();
    let e = voc.pred("E", 2);
    let a = voc.constant("a");
    let mut inst = Instance::new();
    inst.insert(Fact::new(e, vec![a, a]));
    // One fact, listed once for `a` even though `a` fills two positions.
    assert_eq!(inst.facts_with_element(a).len(), 1);
}

#[test]
fn restrict_to_preds_drops_everything_else() {
    let prog = parse_program("E(a,b). U(a). R(a,b,c).").unwrap();
    let e = prog.voc.find_pred("E").unwrap();
    let keep = [e].into_iter().collect();
    let small = prog.instance.restrict_to_preds(&keep);
    assert_eq!(small.len(), 1);
    assert_eq!(small.domain_size(), 2);
}

#[test]
fn rewriting_with_constants_in_rule_heads() {
    // Rule with constant in head: P(X) -> E(X,root).
    let mut voc = Vocabulary::new();
    let (theory, _, _) = bddfc::core::parse_into("P(X) -> E(X,root).", &mut voc).unwrap();
    let q = parse_query("E(U,root)", &mut voc).unwrap();
    let res = rewrite_query(&q, &theory, &mut voc, RewriteConfig::default()).unwrap();
    assert!(res.saturated);
    assert_eq!(res.ucq.len(), 2); // E(U,root) ∨ P(U)
}

#[test]
fn normalization_with_shared_predicates_both_directions() {
    // The same predicate heads a forward and a backward TGD: both must be
    // rerouted, and certain answers preserved.
    let prog = parse_program(
        "A(X) -> exists Z . E(X,Z).
         B(X) -> exists Z . E(Z,X).
         A(a). B(b).",
    )
    .unwrap();
    let mut voc = prog.voc.clone();
    let norm = normalize_spade5(&prog.theory, &mut voc).unwrap();
    assert!(norm.satisfies_spade5());
    let res = chase(&prog.instance, &norm, &mut voc, ChaseConfig::rounds(4));
    let e = voc.find_pred("E").unwrap();
    let facts: Vec<_> = res
        .instance
        .facts_with_pred(e)
        .iter()
        .map(|&i| res.instance.fact(i).clone())
        .collect();
    let a = voc.find_const("a").unwrap();
    let b = voc.find_const("b").unwrap();
    assert!(facts.iter().any(|f| f.args[0] == a), "forward edge from a");
    assert!(facts.iter().any(|f| f.args[1] == b), "backward edge into b");
}

#[test]
fn quotient_tower_on_colored_structure() {
    // Tower laws hold on colored chains too (the structures the pipeline
    // actually quotients).
    let mut voc = Vocabulary::new();
    let (inst, _) = bddfc::zoo::anonymous_chain(&mut voc, 12);
    let coloring = natural_coloring(&inst, &mut voc, 2);
    let colored = coloring.apply(&inst);
    let tower = bddfc::types::QuotientTower::build(&colored, &mut voc, 2, 4);
    assert!(tower.factoring_holds(&colored));
}

#[test]
fn deep_recursion_queries_do_not_overflow() {
    // A 60-atom path query against a 80-edge chain: the backtracking
    // search must stay iterative enough to handle it.
    let mut voc = Vocabulary::new();
    let (inst, _) = bddfc::zoo::anonymous_chain(&mut voc, 80);
    let q = bddfc::zoo::path_query(&mut voc, 60);
    assert!(hom::satisfies_cq(&inst, &q));
    let q_too_long = bddfc::zoo::path_query(&mut voc, 81);
    assert!(!hom::satisfies_cq(&inst, &q_too_long));
}

#[test]
fn vtdag_holds_for_normalized_chase_skeletons() {
    // The pipeline's skeletons are VTDAGs (trees), per Lemma 3.
    let prog = parse_program(
        "E(X,Y) -> exists Z . E(Y,Z).
         E(X,Y) -> exists Z . G(Y,Z).
         E(a,b).",
    )
    .unwrap();
    let mut voc = prog.voc.clone();
    let norm = normalize_spade5(&prog.theory, &mut voc).unwrap();
    let res = chase(&prog.instance, &norm, &mut voc, ChaseConfig::rounds(5));
    let skel = bddfc::finite::skeleton(&res.instance, &prog.instance, &norm);
    assert!(bddfc::finite::is_vtdag(&skel, &voc));
}

#[test]
fn traced_chase_on_multi_rule_theory() {
    let prog = parse_program(
        "P(X) -> exists Z . E(X,Z).
         E(X,Y) -> U(Y).
         U(X) -> M(X).
         P(a).",
    )
    .unwrap();
    let mut voc = prog.voc.clone();
    let traced = bddfc::chase::traced_chase(&prog.instance, &prog.theory, &mut voc, 6);
    assert!(traced.fixpoint);
    let m = voc.find_pred("M").unwrap();
    let m_fact = traced.instance.fact(traced.instance.facts_with_pred(m)[0]).clone();
    let tree = traced.explain(&m_fact).unwrap();
    // M <- U <- E <- P(a): height 3.
    assert_eq!(tree.height(), 3);
    assert_eq!(tree.size(), 3);
}

#[test]
fn grids_are_not_vtdags() {
    // Inner grid nodes have two unrelated predecessors (one Right, one
    // Down): the Definition 11 clique condition fails — grids are the
    // structures the Main Lemma does NOT cover.
    let mut voc = Vocabulary::new();
    let g = bddfc::zoo::grid(&mut voc, 3, 3);
    assert!(!bddfc::finite::is_vtdag(&g, &voc));
    // A single row (a path) is a VTDAG.
    let mut voc2 = Vocabulary::new();
    let path = bddfc::zoo::grid(&mut voc2, 1, 5);
    assert!(bddfc::finite::is_vtdag(&path, &voc2));
}
