//! Differential tests for the chase engine: the semi-naive strategy must
//! be observationally identical to the naive oracle — same facts, same
//! fresh-null names, same depths, round by round — on every paper program
//! in the zoo and on seeded random programs, for both the restricted and
//! the oblivious variant. Additionally, the restricted-chase result must
//! map homomorphically into the oblivious-chase result (the restricted
//! chase is the "economical" sub-chase of the blind one).

use bddfc::chase::{certain_ucq, chase, ChaseConfig, ChaseStepper, ChaseStrategy, ChaseVariant};
use bddfc::core::{
    hom, Atom, Binding, ConjunctiveQuery, Instance, Program, Term, Theory, Ucq, Vocabulary,
};
use bddfc::core::fxhash::FxHashMap;
use bddfc_fuzz::gen::random_program;
use bddfc_fuzz::proptest_lite::run_prop;

/// Every ready-made paper program from the zoo.
fn zoo_programs() -> Vec<(&'static str, Program)> {
    vec![
        ("example1", bddfc::zoo::example1()),
        ("example1_m_prime", bddfc::zoo::example1_m_prime()),
        ("chain_theory", bddfc::zoo::chain_theory()),
        ("remark3", bddfc::zoo::remark3()),
        ("total_order_4", bddfc::zoo::total_order(4)),
        ("example7", bddfc::zoo::example7()),
        ("example9", bddfc::zoo::example9()),
        ("section54", bddfc::zoo::section54()),
        ("notorious", bddfc::zoo::notorious()),
        ("order_theory", bddfc::zoo::order_theory()),
        ("linear_ontology", bddfc::zoo::linear_ontology()),
        ("guarded_example", bddfc::zoo::guarded_example()),
        ("sticky_example", bddfc::zoo::sticky_example()),
    ]
}

const MAX_ROUNDS: u32 = 5;
const MAX_FACTS: usize = 4_000;

/// Steps naive and semi-naive side by side and asserts byte-identical
/// behaviour every round: same new facts in the same order (hence the
/// same fresh-null names), same instances.
fn assert_strategies_agree_roundwise(
    name: &str,
    db: &Instance,
    theory: &Theory,
    voc: &Vocabulary,
    variant: ChaseVariant,
) {
    let mut voc_n = voc.clone();
    let mut voc_s = voc.clone();
    let mut naive = ChaseStepper::new(db, theory, variant, ChaseStrategy::Naive);
    let mut semi = ChaseStepper::new(db, theory, variant, ChaseStrategy::SemiNaive);
    for round in 1..=MAX_ROUNDS {
        let new_n = naive.step(&mut voc_n);
        let new_s = semi.step(&mut voc_s);
        assert_eq!(
            new_n, new_s,
            "{name}/{variant:?}: round {round} facts differ (naive vs semi-naive)"
        );
        assert_eq!(
            naive.instance, semi.instance,
            "{name}/{variant:?}: instances diverged at round {round}"
        );
        if new_n.is_empty() || naive.instance.len() > MAX_FACTS {
            break;
        }
    }
}

/// Full-run comparison through the public `chase` entry point: identical
/// instance, depth map, round count and status.
fn assert_chase_results_agree(
    name: &str,
    db: &Instance,
    theory: &Theory,
    voc: &Vocabulary,
    variant: ChaseVariant,
) {
    let config = ChaseConfig {
        max_rounds: MAX_ROUNDS,
        max_facts: MAX_FACTS,
        variant,
        ..Default::default()
    };
    let res_n = chase(
        db,
        theory,
        &mut voc.clone(),
        config.with_strategy(ChaseStrategy::Naive),
    );
    let res_s = chase(
        db,
        theory,
        &mut voc.clone(),
        config.with_strategy(ChaseStrategy::SemiNaive),
    );
    assert_eq!(res_n.instance, res_s.instance, "{name}/{variant:?}: instance");
    assert_eq!(res_n.depth_map(), res_s.depth_map(), "{name}/{variant:?}: depth map");
    assert_eq!(res_n.rounds, res_s.rounds, "{name}/{variant:?}: rounds");
    assert_eq!(res_n.status, res_s.status, "{name}/{variant:?}: status");
}

/// Checks that the restricted-chase result maps homomorphically into the
/// oblivious-chase result (both truncated at the same round bound):
/// nulls become existential variables, constants must map to themselves.
fn assert_restricted_embeds_in_oblivious(
    name: &str,
    db: &Instance,
    theory: &Theory,
    voc: &Vocabulary,
) {
    let config = ChaseConfig {
        max_rounds: MAX_ROUNDS,
        max_facts: MAX_FACTS,
        ..Default::default()
    };
    let mut voc_r = voc.clone();
    let restricted = chase(db, theory, &mut voc_r, config.with_variant(ChaseVariant::Restricted));
    let oblivious = chase(
        db,
        theory,
        &mut voc.clone(),
        config.with_variant(ChaseVariant::Oblivious),
    );
    // Turn the restricted result into one big conjunctive query: each
    // labelled null becomes a fresh variable, constants stay themselves.
    let mut null_var = FxHashMap::default();
    let mut atoms = Vec::new();
    for fact in restricted.instance.facts() {
        let args = fact
            .args
            .iter()
            .map(|&c| {
                if voc_r.is_null(c) {
                    Term::Var(*null_var.entry(c).or_insert_with(|| voc_r.fresh_var("h")))
                } else {
                    Term::Const(c)
                }
            })
            .collect();
        atoms.push(Atom::new(fact.pred, args));
    }
    assert!(
        hom::hom_exists(&oblivious.instance, &atoms, &Binding::default()),
        "{name}: restricted chase ({} facts) must embed into oblivious chase ({} facts)",
        restricted.instance.len(),
        oblivious.instance.len(),
    );
}

#[test]
fn zoo_programs_naive_equals_seminaive_roundwise() {
    for (name, prog) in zoo_programs() {
        for variant in [ChaseVariant::Restricted, ChaseVariant::Oblivious] {
            assert_strategies_agree_roundwise(
                name,
                &prog.instance,
                &prog.theory,
                &prog.voc,
                variant,
            );
        }
    }
}

#[test]
fn zoo_programs_chase_results_identical() {
    for (name, prog) in zoo_programs() {
        for variant in [ChaseVariant::Restricted, ChaseVariant::Oblivious] {
            assert_chase_results_agree(name, &prog.instance, &prog.theory, &prog.voc, variant);
        }
    }
}

#[test]
fn zoo_programs_restricted_embeds_in_oblivious() {
    for (name, prog) in zoo_programs() {
        assert_restricted_embeds_in_oblivious(name, &prog.instance, &prog.theory, &prog.voc);
    }
}

/// The whole naive-vs-semi-naive agreement suite, re-run in-process with
/// the fork-join layer genuinely sharding (2 threads, then an odd 7 so
/// shard boundaries move): the oracle equality must be thread-blind.
#[test]
fn zoo_programs_agree_multithreaded() {
    for threads in [2usize, 7] {
        bddfc::core::par::with_thread_count(threads, || {
            for (name, prog) in zoo_programs() {
                for variant in [ChaseVariant::Restricted, ChaseVariant::Oblivious] {
                    assert_strategies_agree_roundwise(
                        name,
                        &prog.instance,
                        &prog.theory,
                        &prog.voc,
                        variant,
                    );
                    assert_chase_results_agree(
                        name,
                        &prog.instance,
                        &prog.theory,
                        &prog.voc,
                        variant,
                    );
                }
            }
        });
    }
}

/// The certain-answer layer on top of the steppers: the witnessing depth
/// `k` reported in `Certainty::True(k)` (and the `False`/`Unknown`
/// verdicts) must be strategy-blind — the `k` is the empirical `k_Ψ` of
/// the BDD definition, and a strategy-dependent value would make the
/// depth probes meaningless.
fn assert_certainty_depths_agree(name: &str, prog: &Program, voc: &Vocabulary, query: &Ucq) {
    let config = ChaseConfig {
        max_rounds: MAX_ROUNDS,
        max_facts: MAX_FACTS,
        ..Default::default()
    };
    for variant in [ChaseVariant::Restricted, ChaseVariant::Oblivious] {
        let c_n = certain_ucq(
            &prog.instance,
            &prog.theory,
            &mut voc.clone(),
            query,
            config.with_variant(variant).with_strategy(ChaseStrategy::Naive),
        );
        let c_s = certain_ucq(
            &prog.instance,
            &prog.theory,
            &mut voc.clone(),
            query,
            config.with_variant(variant).with_strategy(ChaseStrategy::SemiNaive),
        );
        assert_eq!(
            c_n, c_s,
            "{name}/{variant:?}: Certainty (and depth k) diverged between strategies"
        );
    }
}

#[test]
fn zoo_programs_certain_depths_strategy_blind() {
    for (name, prog) in zoo_programs() {
        // The program's own queries, plus generic E-path queries of
        // lengths 1..=3 (false or unknown on E-less programs — the
        // verdicts must still agree).
        let mut voc = prog.voc.clone();
        let mut queries: Vec<Ucq> =
            prog.queries.iter().cloned().map(Ucq::single).collect();
        for len in 1..=3 {
            queries.push(Ucq::single(bddfc::zoo::path_query(&mut voc, len)));
        }
        for query in &queries {
            assert_certainty_depths_agree(name, &prog, &voc, query);
        }
    }
}

#[test]
fn random_programs_certain_depths_strategy_blind() {
    run_prop("random_programs_certain_depths_strategy_blind", 12, |g| {
        let seed = g.u64_in("seed", 0, 1 << 32);
        let prog = random_program(seed);
        let mut voc = prog.voc.clone();
        // Two-step path queries over every ordered pair of the three
        // R-predicates the random theories and instances range over.
        let preds: Vec<_> = (0..3)
            .map(|i| voc.find_pred(&format!("R{i}")).expect("R-predicate"))
            .collect();
        let mut queries = Vec::new();
        for &p in &preds {
            for &q in &preds {
                let (x, y, z) =
                    (voc.fresh_var("dx"), voc.fresh_var("dy"), voc.fresh_var("dz"));
                queries.push(Ucq::single(ConjunctiveQuery::boolean(vec![
                    Atom::new(p, vec![Term::Var(x), Term::Var(y)]),
                    Atom::new(q, vec![Term::Var(y), Term::Var(z)]),
                ])));
            }
        }
        for query in &queries {
            assert_certainty_depths_agree("random", &prog, &voc, query);
        }
        Ok(())
    });
}

#[test]
fn random_programs_naive_equals_seminaive() {
    run_prop("random_programs_naive_equals_seminaive", 24, |g| {
        let seed = g.u64_in("seed", 0, 1 << 32);
        let prog = random_program(seed);
        for variant in [ChaseVariant::Restricted, ChaseVariant::Oblivious] {
            assert_strategies_agree_roundwise(
                "random",
                &prog.instance,
                &prog.theory,
                &prog.voc,
                variant,
            );
            assert_chase_results_agree("random", &prog.instance, &prog.theory, &prog.voc, variant);
        }
        Ok(())
    });
}

#[test]
fn random_programs_restricted_embeds_in_oblivious() {
    run_prop("random_programs_restricted_embeds_in_oblivious", 16, |g| {
        let seed = g.u64_in("seed", 0, 1 << 32);
        let prog = random_program(seed);
        assert_restricted_embeds_in_oblivious("random", &prog.instance, &prog.theory, &prog.voc);
        Ok(())
    });
}
