//! Property tests for the fuzz harness itself: generation determinism
//! (byte-identical across runs and thread counts) and shrinker soundness
//! (every shrunk output still parses and still fails the same property).

use bddfc::core::par;
use bddfc_fuzz::check_case;
use bddfc_fuzz::gen::{gen_case, random_program, Strat};
use bddfc_fuzz::props::{Mutation, PropCtx, PROPS};
use bddfc_fuzz::proptest_lite::{ensure, run_prop};
use bddfc_fuzz::shrink::{shrink, DEFAULT_MAX_EVALS};

/// Generation for a fixed seed is byte-identical across runs and across
/// `BDDFC_THREADS`-style worker counts — the precondition for every
/// `bddfc-fuzz --seed` reproduction line ever printed.
#[test]
fn generation_is_byte_identical_across_runs_and_thread_counts() {
    run_prop("fuzz/generation_determinism", 40, |g| {
        let seed = g.u64_in("seed", 0, 1 << 48);
        let base = gen_case(seed);
        ensure(gen_case(seed).src == base.src, "generation drifted across runs")?;
        for threads in [1usize, 2, 7] {
            let other = par::with_thread_count(threads, || gen_case(seed));
            ensure(
                other.src == base.src && other.strat == base.strat,
                &format!("generation drifted at {threads} threads"),
            )?;
        }
        Ok(())
    });
}

/// The promoted `random_program` (used by tests/{differential,
/// determinism}.rs) is equally deterministic: same theory text, same
/// sorted instance, for a fixed seed.
#[test]
fn random_program_is_deterministic() {
    run_prop("fuzz/random_program_determinism", 20, |g| {
        let seed = g.u64_in("seed", 0, 1 << 32);
        let a = random_program(seed);
        let b = par::with_thread_count(7, || random_program(seed));
        ensure(
            a.theory.display(&a.voc).to_string() == b.theory.display(&b.voc).to_string(),
            "random_program theory drifted",
        )?;
        ensure(
            a.instance.display(&a.voc).to_string() == b.instance.display(&b.voc).to_string(),
            "random_program instance drifted",
        )
    });
}

/// Seeds cycle through all five strata, so every class template stays
/// exercised by any nontrivial fuzz run.
#[test]
fn seeds_cover_every_stratum() {
    let mut seen: Vec<Strat> = (0..32).filter_map(|s| gen_case(s).strat).collect();
    seen.sort_unstable();
    seen.dedup();
    assert_eq!(seen, Strat::ALL.to_vec());
}

/// Shrinker soundness, hunted through real failures: under each injected
/// engine mutation, every shrunk reproducer still parses and still fails
/// the same property with the same context.
#[test]
fn shrinker_outputs_still_fail_and_still_parse() {
    for mutation in [Mutation::SkipLastRule, Mutation::SwapBodyAtoms] {
        let ctx = PropCtx { mutation, ..PropCtx::default() };
        let mut found = 0;
        'seeds: for seed in 0..300u64 {
            let case = gen_case(seed);
            for prop in PROPS {
                if let Err(msg) = check_case(&case, prop, &ctx) {
                    let out = shrink(&case, prop, &ctx, &msg, DEFAULT_MAX_EVALS);
                    out.case
                        .program()
                        .unwrap_or_else(|e| panic!("shrunk case must parse: {e}\n{}", out.case.src));
                    assert!(
                        check_case(&out.case, prop, &ctx).is_err(),
                        "{mutation:?}/{}: shrunk case no longer fails:\n{}",
                        prop.name,
                        out.case.src
                    );
                    assert!(out.case.src.len() <= case.src.len());
                    found += 1;
                    if found >= 3 {
                        break 'seeds;
                    }
                    continue 'seeds;
                }
            }
        }
        assert!(found >= 1, "mutation {mutation:?} was never caught in 300 seeds");
    }
}
