//! Thread-count determinism suite: every parallelized component — chase,
//! datalog saturation, type analyzer, UCQ rewriter and bounded model
//! finder — must produce byte-identical outputs for `BDDFC_THREADS` in
//! {1, 2, 7}, across the paper zoo and seeded random programs. The
//! shard-then-merge contract of `bddfc_core::par` (results collected
//! per shard, merged in input order, order-sensitive phases sequential)
//! is what makes this hold; this suite is the executable statement of
//! that contract.

use bddfc::chase::{
    chase, chase_with, find_model, find_model_with, saturate_datalog, saturate_datalog_with,
    ChaseConfig, ChaseResult, ChaseStrategy, ChaseVariant, FinderConfig,
};
use bddfc::core::obs::Memory;
use bddfc::core::par;
use bddfc::core::{Instance, Program, Theory, Vocabulary};
use bddfc::rewrite::{rewrite_query, rewrite_query_with, RewriteConfig};
use bddfc::types::TypeAnalyzer;
use bddfc_fuzz::gen::random_program;
use bddfc_fuzz::proptest_lite::run_prop;

/// The thread counts the suite compares: the sequential baseline, the
/// smallest genuine fork-join, and an odd count that never divides the
/// work evenly (so shard boundaries move).
const THREADS: [usize; 3] = [1, 2, 7];

fn zoo_programs() -> Vec<(&'static str, Program)> {
    vec![
        ("example1", bddfc::zoo::example1()),
        ("example1_m_prime", bddfc::zoo::example1_m_prime()),
        ("chain_theory", bddfc::zoo::chain_theory()),
        ("remark3", bddfc::zoo::remark3()),
        ("total_order_4", bddfc::zoo::total_order(4)),
        ("example7", bddfc::zoo::example7()),
        ("example9", bddfc::zoo::example9()),
        ("section54", bddfc::zoo::section54()),
        ("notorious", bddfc::zoo::notorious()),
        ("order_theory", bddfc::zoo::order_theory()),
        ("linear_ontology", bddfc::zoo::linear_ontology()),
        ("guarded_example", bddfc::zoo::guarded_example()),
        ("sticky_example", bddfc::zoo::sticky_example()),
    ]
}

fn assert_chase_identical(name: &str, db: &Instance, theory: &Theory, voc: &Vocabulary) {
    for variant in [ChaseVariant::Restricted, ChaseVariant::Oblivious] {
        for strategy in [ChaseStrategy::SemiNaive, ChaseStrategy::Naive] {
            let config = ChaseConfig {
                max_rounds: 4,
                max_facts: 4_000,
                variant,
                strategy,
            };
            let run = |threads: usize| -> ChaseResult {
                par::with_thread_count(threads, || chase(db, theory, &mut voc.clone(), config))
            };
            let base = run(THREADS[0]);
            for &t in &THREADS[1..] {
                let other = run(t);
                let ctx = format!("{name}/{variant:?}/{strategy:?} at {t} threads");
                assert_eq!(base.instance, other.instance, "{ctx}: instance");
                assert_eq!(base.depth_map(), other.depth_map(), "{ctx}: depth map");
                assert_eq!(base.rounds, other.rounds, "{ctx}: rounds");
                assert_eq!(base.status, other.status, "{ctx}: status");
                assert_eq!(
                    base.stats.body_matches_per_round, other.stats.body_matches_per_round,
                    "{ctx}: work counters"
                );
            }
        }
    }
}

#[test]
fn chase_is_thread_count_invariant_on_zoo() {
    for (name, prog) in zoo_programs() {
        assert_chase_identical(name, &prog.instance, &prog.theory, &prog.voc);
    }
}

#[test]
fn chase_is_thread_count_invariant_on_random_programs() {
    run_prop("chase_is_thread_count_invariant_on_random_programs", 12, |g| {
        let seed = g.u64_in("seed", 0, 1 << 32);
        let prog = random_program(seed);
        assert_chase_identical("random", &prog.instance, &prog.theory, &prog.voc);
        Ok(())
    });
}

#[test]
fn saturation_is_thread_count_invariant() {
    for (name, prog) in zoo_programs() {
        let base =
            par::with_thread_count(1, || saturate_datalog(&prog.instance, &prog.theory));
        for &t in &THREADS[1..] {
            let other =
                par::with_thread_count(t, || saturate_datalog(&prog.instance, &prog.theory));
            assert_eq!(base.instance, other.instance, "{name} at {t} threads: instance");
            assert_eq!(base.rounds, other.rounds, "{name} at {t} threads: rounds");
            assert_eq!(base.derived, other.derived, "{name} at {t} threads: derived");
            assert_eq!(
                base.body_matches_per_round, other.body_matches_per_round,
                "{name} at {t} threads: work counters"
            );
        }
    }
}

#[test]
fn analyzer_partition_is_thread_count_invariant() {
    for (name, prog) in zoo_programs() {
        // Chase a little first so the instance has nulls to classify.
        let mut voc = prog.voc.clone();
        let chased = chase(
            &prog.instance,
            &prog.theory,
            &mut voc,
            ChaseConfig { max_rounds: 3, max_facts: 500, ..Default::default() },
        );
        for n in [2usize, 3] {
            let run = |threads: usize| {
                par::with_thread_count(threads, || {
                    TypeAnalyzer::new(&chased.instance, &mut voc.clone(), n).partition()
                })
            };
            let base = run(THREADS[0]);
            for &t in &THREADS[1..] {
                assert_eq!(base, run(t), "{name}, n = {n}, at {t} threads: partition");
            }
        }
    }
}

#[test]
fn rewriter_is_thread_count_invariant() {
    // Zoo programs with single-head theories, plus budget-capped
    // divergent cases; queries are the programs' own where present.
    let mut cases: Vec<(String, Theory, bddfc::core::ConjunctiveQuery, Vocabulary, RewriteConfig)> =
        Vec::new();
    for (name, prog) in zoo_programs() {
        if !prog.theory.is_single_head() {
            continue;
        }
        for (qi, q) in prog.queries.iter().enumerate() {
            cases.push((
                format!("{name}/q{qi}"),
                prog.theory.clone(),
                q.clone(),
                prog.voc.clone(),
                RewriteConfig { max_disjuncts: 15, max_steps: 300, max_piece: 2 },
            ));
        }
    }
    let mut voc = Vocabulary::new();
    let th = Theory::new(vec![
        bddfc::core::parse_rule("E(X,Y), E(Y,Z) -> E(X,Z)", &mut voc).unwrap(),
    ]);
    let mut q = bddfc::core::parse_query("E(U,V)", &mut voc).unwrap();
    q.free = vec![voc.var("U"), voc.var("V")];
    cases.push((
        "transitivity_capped".into(),
        th,
        q,
        voc,
        RewriteConfig { max_disjuncts: 25, max_steps: 5_000, max_piece: 2 },
    ));
    assert!(!cases.is_empty(), "expected at least one single-head rewriting case");

    for (name, theory, query, voc, config) in cases {
        let run = |threads: usize| {
            par::with_thread_count(threads, || {
                rewrite_query(&query, &theory, &mut voc.clone(), config).expect("single-head")
            })
        };
        let base = run(THREADS[0]);
        for &t in &THREADS[1..] {
            let other = run(t);
            let ctx = format!("{name} at {t} threads");
            assert_eq!(base.ucq, other.ucq, "{ctx}: rewritten UCQ");
            assert_eq!(base.saturated, other.saturated, "{ctx}: saturation flag");
            assert_eq!(base.steps, other.steps, "{ctx}: step count");
            assert_eq!(base.max_depth, other.max_depth, "{ctx}: depth witness");
        }
    }
}

/// Telemetry determinism: with a `Memory` sink attached, every engine's
/// aggregated counters and per-event-kind counts — not just its outputs
/// — must be identical across thread counts. This is the executable form
/// of the fields-vs-gauges contract in `bddfc_core::obs`: event *fields*
/// are algorithmic work counts and thread-blind; only *gauges*
/// (`wall_ns`, `threads`) may vary, and they are excluded from
/// aggregation.
#[test]
fn telemetry_counters_are_thread_count_invariant() {
    for (name, prog) in zoo_programs() {
        let run = |threads: usize| {
            par::with_thread_count(threads, || {
                let sink = Memory::new(4096);
                let mut voc = prog.voc.clone();
                let chased = chase_with(
                    &prog.instance,
                    &prog.theory,
                    &mut voc,
                    ChaseConfig { max_rounds: 3, max_facts: 2_000, ..Default::default() },
                    &sink,
                );
                let sat = saturate_datalog_with(&prog.instance, &prog.theory, &sink);
                let outcome = find_model_with(
                    &prog.instance,
                    &prog.theory,
                    &mut prog.voc.clone(),
                    prog.queries.first(),
                    FinderConfig { max_size: 3, max_nodes: 20_000 },
                    &sink,
                );
                let partition = TypeAnalyzer::new(&chased.instance, &mut voc, 2)
                    .partition_with(&sink);
                let rewritten = prog.queries.first().and_then(|q| {
                    rewrite_query_with(
                        q,
                        &prog.theory,
                        &mut prog.voc.clone(),
                        RewriteConfig { max_disjuncts: 15, max_steps: 300, max_piece: 2 },
                        &sink,
                    )
                });
                (
                    chased.instance,
                    sat.instance,
                    outcome,
                    partition,
                    rewritten.map(|r| r.ucq),
                    sink.counters(),
                    sink.event_counts(),
                )
            })
        };
        let base = run(THREADS[0]);
        assert!(
            !base.6.is_empty(),
            "{name}: expected telemetry events from the instrumented engines"
        );
        for &t in &THREADS[1..] {
            let other = run(t);
            let ctx = format!("{name} at {t} threads");
            assert_eq!(base.0, other.0, "{ctx}: chase instance");
            assert_eq!(base.1, other.1, "{ctx}: saturated instance");
            assert_eq!(base.2, other.2, "{ctx}: finder outcome");
            assert_eq!(base.3, other.3, "{ctx}: partition");
            assert_eq!(base.4, other.4, "{ctx}: rewritten UCQ");
            assert_eq!(base.5, other.5, "{ctx}: telemetry counters");
            assert_eq!(base.6, other.6, "{ctx}: telemetry event counts");
        }
    }
}

/// Bounded-capacity semantics of the `Memory` sink: with a tiny cap the
/// event and span *logs* stop growing, but counters keep accumulating
/// over every event, and `dropped()` / `spans_dropped()` report the
/// elided tail exactly — at any thread count. The drop decision happens
/// in the sink's sequential record path, so even which events survive in
/// the log is deterministic.
#[test]
fn memory_sink_bounded_cap_is_thread_count_invariant() {
    let prog = bddfc::zoo::example1();
    let config = ChaseConfig { max_rounds: 4, max_facts: 2_000, ..Default::default() };
    let run = |threads: usize, cap: usize| {
        par::with_thread_count(threads, || {
            let sink = Memory::new(cap);
            let _ = chase_with(&prog.instance, &prog.theory, &mut prog.voc.clone(), config, &sink);
            (
                sink.len(),
                sink.dropped(),
                // Deterministic event payload only: gauges (wall_ns) vary
                // run to run and are excluded by the obs contract.
                sink.events()
                    .iter()
                    .map(|e| (e.engine, e.name, e.parent, e.key, e.fields.clone()))
                    .collect::<Vec<_>>(),
                sink.counters(),
                sink.spans_opened(),
                sink.spans_dropped(),
                sink.spans()
                    .iter()
                    .map(|s| (s.id, s.parent, s.engine, s.name, s.key))
                    .collect::<Vec<_>>(),
            )
        })
    };
    let unbounded = run(1, 1 << 16);
    assert_eq!(unbounded.1, 0, "cap 65536 must not drop anything here");
    let total_events = unbounded.0;
    let total_spans = unbounded.4;
    assert!(total_events > 3, "workload too small to exercise the bound");
    assert!(total_spans > 3);

    const CAP: usize = 3;
    let base = run(THREADS[0], CAP);
    assert_eq!(base.2.len(), CAP, "event log must stop at the cap");
    assert_eq!(base.1, total_events - CAP as u64, "dropped() must be exact");
    assert_eq!(base.3, unbounded.3, "counters must keep accumulating past the cap");
    assert_eq!(base.4, total_spans, "span ids must keep advancing past the cap");
    assert_eq!(base.5, total_spans - CAP as u64, "spans_dropped() must be exact");
    // The surviving log prefix matches the unbounded run's prefix.
    assert_eq!(base.2[..], unbounded.2[..CAP]);
    assert_eq!(base.6[..], unbounded.6[..CAP]);
    for &t in &THREADS[1..] {
        assert_eq!(run(t, CAP), base, "bounded Memory sink at {t} threads");
    }
}

/// Span-id determinism: the deterministic half of a span — id, parent,
/// engine, name, attribution key — is byte-identical across thread
/// counts for every engine, on the whole zoo. Only `start_ns`/`end_ns`
/// are gauges.
#[test]
fn span_identities_are_thread_count_invariant() {
    for (name, prog) in zoo_programs() {
        let run = |threads: usize| {
            par::with_thread_count(threads, || {
                let sink = Memory::new(1 << 14);
                let mut voc = prog.voc.clone();
                let _ = chase_with(
                    &prog.instance,
                    &prog.theory,
                    &mut voc,
                    ChaseConfig { max_rounds: 3, max_facts: 2_000, ..Default::default() },
                    &sink,
                );
                let _ = saturate_datalog_with(&prog.instance, &prog.theory, &sink);
                let _ = find_model_with(
                    &prog.instance,
                    &prog.theory,
                    &mut prog.voc.clone(),
                    prog.queries.first(),
                    FinderConfig { max_size: 3, max_nodes: 20_000 },
                    &sink,
                );
                let spans = sink.spans();
                assert!(spans.iter().all(|s| s.is_closed()), "{name}: span left open");
                spans
                    .iter()
                    .map(|s| (s.id, s.parent, s.engine, s.name, s.key))
                    .collect::<Vec<_>>()
            })
        };
        let base = run(THREADS[0]);
        assert!(!base.is_empty(), "{name}: expected spans from the instrumented engines");
        // Sequential ids starting at 1, by construction.
        for (i, s) in base.iter().enumerate() {
            assert_eq!(s.0, i as u64 + 1, "{name}: span ids must be sequential");
        }
        for &t in &THREADS[1..] {
            assert_eq!(base, run(t), "{name} at {t} threads: span identities");
        }
    }
}

#[test]
fn model_finder_is_thread_count_invariant() {
    for (name, prog) in zoo_programs() {
        let forbidden = prog.queries.first();
        let run = |threads: usize| {
            par::with_thread_count(threads, || {
                find_model(
                    &prog.instance,
                    &prog.theory,
                    &mut prog.voc.clone(),
                    forbidden,
                    FinderConfig { max_size: 3, max_nodes: 20_000 },
                )
            })
        };
        let base = run(THREADS[0]);
        for &t in &THREADS[1..] {
            // SearchOutcome equality covers the certified model itself.
            assert_eq!(base, run(t), "{name} at {t} threads: finder outcome");
        }
    }
}
