//! Subprocess smoke tests for the `bddfc-fuzz` CLI, mirroring the
//! `tests/lint.rs` style: stable exit codes on the negative paths (bad
//! seed, unknown prop, zero budget, corrupt corpus), deterministic
//! reports across `BDDFC_THREADS`, corpus replay, and the hidden
//! `--mutate` flag catching and shrinking a seeded engine defect.

use std::process::{Command, Output};

/// Exit code 2: usage and IO errors (including corrupt corpus files).
const EXIT_USAGE: i32 = 2;

fn fuzz_cmd(args: &[&str], envs: &[(&str, &str)]) -> Output {
    let mut cmd = Command::new(env!("CARGO"));
    cmd.args(["run", "-q", "-p", "bddfc-fuzz", "--bin", "bddfc-fuzz", "--"])
        .args(args)
        .current_dir(env!("CARGO_MANIFEST_DIR"));
    for &(k, v) in envs {
        cmd.env(k, v);
    }
    cmd.output().expect("cargo run bddfc-fuzz")
}

fn stdout_of(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn stderr_of(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

#[test]
fn bad_seed_exits_2() {
    let out = fuzz_cmd(&["--seed", "zzz"], &[]);
    assert_eq!(out.status.code(), Some(EXIT_USAGE), "{}", stderr_of(&out));
    assert!(stderr_of(&out).contains("--seed"), "{}", stderr_of(&out));
}

#[test]
fn unknown_prop_exits_2() {
    let out = fuzz_cmd(&["--seed", "1", "--prop", "no_such_prop"], &[]);
    assert_eq!(out.status.code(), Some(EXIT_USAGE), "{}", stderr_of(&out));
    assert!(stderr_of(&out).contains("--list-props"), "{}", stderr_of(&out));
}

#[test]
fn zero_budget_exits_2() {
    let out = fuzz_cmd(&["--budget-ms", "0"], &[]);
    assert_eq!(out.status.code(), Some(EXIT_USAGE), "{}", stderr_of(&out));
    assert!(stderr_of(&out).contains("positive"), "{}", stderr_of(&out));
}

#[test]
fn missing_mode_exits_2() {
    let out = fuzz_cmd(&[], &[]);
    assert_eq!(out.status.code(), Some(EXIT_USAGE), "{}", stderr_of(&out));
}

#[test]
fn corrupt_corpus_file_exits_2() {
    let dir = std::env::temp_dir().join("bddfc_fuzz_cli_corrupt");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("broken.dlg");
    std::fs::write(&path, "P(X -> oops\n").unwrap();
    let out = fuzz_cmd(&["--replay", path.to_str().unwrap()], &[]);
    assert_eq!(out.status.code(), Some(EXIT_USAGE), "{}", stderr_of(&out));
    assert!(
        stderr_of(&out).contains("corrupt corpus file"),
        "{}",
        stderr_of(&out)
    );
}

#[test]
fn committed_corpus_replays_clean() {
    let out = fuzz_cmd(&["--replay", "tests/corpus"], &[]);
    assert_eq!(out.status.code(), Some(0), "{}", stdout_of(&out));
    let text = stdout_of(&out);
    assert!(text.ends_with("ok\n"), "{text}");
    for entry in std::fs::read_dir(concat!(env!("CARGO_MANIFEST_DIR"), "/tests/corpus")).unwrap() {
        let name = entry.unwrap().file_name().into_string().unwrap();
        if name.ends_with(".dlg") {
            assert!(text.contains(&format!("{name}: ok")), "{name} missing from:\n{text}");
        }
    }
}

/// The acceptance bar: a fixed `--seed S --budget-ms T` invocation
/// produces a byte-identical stdout report across `BDDFC_THREADS`
/// {1,2,7} (case throughput differs, but that goes to stderr only).
#[test]
fn budgeted_report_is_byte_identical_across_thread_counts() {
    let args = ["--seed", "5", "--budget-ms", "1500"];
    let base = fuzz_cmd(&args, &[("BDDFC_THREADS", "1")]);
    assert_eq!(base.status.code(), Some(0), "{}", stdout_of(&base));
    assert!(stdout_of(&base).ends_with("ok\n"), "{}", stdout_of(&base));
    for threads in ["2", "7"] {
        let other = fuzz_cmd(&args, &[("BDDFC_THREADS", threads)]);
        assert_eq!(other.status.code(), Some(0));
        assert_eq!(
            stdout_of(&other),
            stdout_of(&base),
            "report drifted at BDDFC_THREADS={threads}"
        );
    }
}

/// Same bar for the JSON emitter, in exact-case mode.
#[test]
fn json_report_is_byte_identical_across_thread_counts() {
    let args = ["--seed", "9", "--cases", "3", "--json"];
    let base = fuzz_cmd(&args, &[("BDDFC_THREADS", "1")]);
    assert_eq!(base.status.code(), Some(0), "{}", stdout_of(&base));
    assert!(stdout_of(&base).starts_with("{\"schema\":1,"), "{}", stdout_of(&base));
    for threads in ["2", "7"] {
        let other = fuzz_cmd(&args, &[("BDDFC_THREADS", threads)]);
        assert_eq!(stdout_of(&other), stdout_of(&base));
    }
}

/// The hidden `--mutate` flag injects a known-bad engine and must be
/// caught, shrunk to at most 5 rules, and reported with a rerun line —
/// the end-to-end proof that the harness detects real discrepancies.
#[test]
fn seeded_mutation_is_caught_and_shrunk() {
    let out = fuzz_cmd(
        &["--seed", "3", "--cases", "60", "--mutate", "skip-last-rule"],
        &[],
    );
    assert_eq!(out.status.code(), Some(1), "{}", stdout_of(&out));
    let text = stdout_of(&out);
    assert!(text.contains("mutation: skip-last-rule"), "{text}");
    assert!(text.contains("rerun: bddfc-fuzz --seed 0x"), "{text}");
    assert!(text.ends_with("FAIL\n"), "{text}");
    // The shrunk reproducer is printed indented after its header; it must
    // contain at most 5 rules (acceptance bar).
    let rules = text
        .lines()
        .filter(|l| l.starts_with("  ") && l.contains("->"))
        .count();
    assert!(
        (1..=5).contains(&rules),
        "expected a 1..=5 rule reproducer, got {rules}:\n{text}"
    );
}

#[test]
fn list_props_names_the_registry() {
    let out = fuzz_cmd(&["--list-props"], &[]);
    assert_eq!(out.status.code(), Some(0));
    let text = stdout_of(&out);
    for name in [
        "chase_strategy_agreement",
        "chase_restricted_embeds",
        "chase_certainty_strategy_blind",
        "chase_thread_invariance",
        "classes_witness_oracle",
        "rewrite_vs_chase",
        "lint_stability",
    ] {
        assert!(text.contains(name), "{name} missing from:\n{text}");
    }
}
