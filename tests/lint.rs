//! Integration tests for the linter: CLI determinism across thread
//! counts, and the differential contract between the witness-producing
//! recognizers and their legacy boolean oracles.

use bddfc::classes::{
    guard_violations, is_guarded, is_sticky, is_theorem3_fragment, is_weakly_acyclic,
    sticky_violations, theorem3_violations, weak_acyclicity_violation,
};
use bddfc::core::{Theory, Vocabulary};
use bddfc_fuzz::gen::random_program_source;
use bddfc_fuzz::proptest_lite::{ensure, run_prop, PropResult};
use bddfc_lint::{lint_source, Severity};
use std::process::Command;

/// Runs `bddfc-lint --zoo --json` under a given `BDDFC_THREADS` setting
/// and returns (stdout, success).
fn lint_zoo_json(threads: &str) -> (String, bool) {
    let out = Command::new(env!("CARGO"))
        .args(["run", "-q", "-p", "bddfc-lint", "--bin", "bddfc-lint", "--"])
        .args(["--zoo", "--json", "--deny", "error"])
        .env("BDDFC_THREADS", threads)
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .expect("cargo run bddfc-lint");
    (String::from_utf8_lossy(&out.stdout).into_owned(), out.status.success())
}

/// The acceptance bar from the issue: `--json` output is byte-identical
/// whatever worker-thread count the engine side is configured with.
#[test]
fn lint_json_is_byte_identical_across_thread_counts() {
    let (base, base_ok) = lint_zoo_json("1");
    assert!(base.starts_with("{\"schema\":1,\"files\":["), "{base}");
    assert!(base.ends_with("]}\n"), "{base}");
    assert!(base_ok, "the zoo corpus must pass --deny error");
    for threads in ["2", "7"] {
        let (out, ok) = lint_zoo_json(threads);
        assert_eq!(out, base, "JSON drifted at BDDFC_THREADS={threads}");
        assert_eq!(ok, base_ok);
    }
}

/// Checks, for one theory, that every witness-producing recognizer agrees
/// with its legacy boolean oracle, and that every witness it reports
/// re-validates against the theory from scratch.
fn check_witnesses_agree(label: &str, theory: &Theory, voc: &Vocabulary) -> PropResult {
    let guards = guard_violations(theory);
    ensure(
        is_guarded(theory) == guards.is_empty(),
        &format!("{label}: guard witness/oracle disagree"),
    )?;
    for v in &guards {
        v.validate(theory)
            .map_err(|e| format!("{label}: bogus guard witness: {e}"))?;
    }

    let sticky = sticky_violations(theory);
    ensure(
        is_sticky(theory) == sticky.is_empty(),
        &format!("{label}: sticky witness/oracle disagree"),
    )?;
    for v in &sticky {
        v.validate(theory)
            .map_err(|e| format!("{label}: bogus sticky witness: {e}"))?;
    }

    let wa = weak_acyclicity_violation(theory);
    ensure(
        is_weakly_acyclic(theory) == wa.is_none(),
        &format!("{label}: weak-acyclicity witness/oracle disagree"),
    )?;
    if let Some(v) = &wa {
        v.validate(theory)
            .map_err(|e| format!("{label}: bogus WA witness: {e}"))?;
    }

    let t3 = theorem3_violations(theory);
    ensure(
        is_theorem3_fragment(theory) == t3.is_empty(),
        &format!("{label}: theorem3 witness/oracle disagree"),
    )?;
    for v in &t3 {
        v.validate(theory)
            .map_err(|e| format!("{label}: bogus theorem3 witness: {e}"))?;
    }
    let _ = voc;
    Ok(())
}

/// Every zoo corpus program: witnesses agree with the oracles and
/// re-validate.
#[test]
fn witnesses_agree_with_oracles_on_the_zoo() {
    for &(name, src) in bddfc::zoo::corpus() {
        let prog = bddfc::core::parse_program(src).unwrap();
        check_witnesses_agree(name, &prog.theory, &prog.voc).unwrap();
    }
}

/// Differential property: on randomly generated programs, every
/// witness-producing recognizer agrees with its boolean oracle and all
/// witnesses re-validate.
#[test]
fn witnesses_agree_with_oracles_on_random_theories() {
    run_prop("lint/witness_oracle_agreement", 200, |g| {
        let src = random_program_source(g);
        let prog = bddfc::core::parse_program(&src)
            .map_err(|e| format!("generated program failed to parse: {e}\n{src}"))?;
        check_witnesses_agree("random", &prog.theory, &prog.voc)
    });
}

/// The library surface the CLI is built on stays deterministic: linting
/// the same source twice gives identical reports, and the zoo corpus
/// never produces an error-level diagnostic.
#[test]
fn zoo_corpus_lints_below_error() {
    for &(name, src) in bddfc::zoo::corpus() {
        let report = lint_source(name, src);
        let again = lint_source(name, src);
        assert_eq!(report.json(), again.json(), "{name}: unstable lint output");
        if let Some(worst) = report.max_severity() {
            assert!(worst < Severity::Error, "{name}:\n{}", report.render());
        }
    }
}

/// Lint a file from disk through the real CLI, text mode: rustc-style
/// rendering and the deny gate.
#[test]
fn lint_cli_renders_and_gates_on_files() {
    let dir = std::env::temp_dir().join("bddfc_lint_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("bad.dlog");
    // The parser rejects an empty body, so this surfaces as a B000 parse
    // error — error-level either way: the default gate must trip.
    std::fs::write(&path, " -> P(X).\n").unwrap();
    let out = Command::new(env!("CARGO"))
        .args(["run", "-q", "-p", "bddfc-lint", "--bin", "bddfc-lint", "--"])
        .arg(&path)
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .expect("cargo run bddfc-lint");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(!out.status.success(), "error-level lint must exit nonzero:\n{stdout}");
    assert!(stdout.contains("error["), "{stdout}");
}
