//! Docs-vs-code drift guard for the stable diagnostic codes (satellite
//! of the static-analyzer PR): the three places a `Bxxx` code lives
//! must never drift apart —
//!
//! * the [`bddfc_core::diag::CODES`] registry (drives `--explain`),
//! * the `Diagnostic::new("Bxxx", ...)` emission sites across the
//!   workspace,
//! * the human-facing module-doc code tables (`//! | Bxxx | ... |`)
//!   and any markdown tables in the repo-root docs.
//!
//! Every registered code must be emitted somewhere, every emitted code
//! must be registered, and every code must appear in exactly one
//! documented table row (the per-module tables partition the space).
//! The scan is textual on purpose: it catches the case where a new lint
//! ships without registry metadata or documentation, which no amount of
//! unit testing inside the lint crate can see.

use bddfc_core::diag::CODES;
use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};

/// All `.rs` files under `crates/*/src`, plus the repo-root markdown
/// docs — the only places codes are emitted or documented.
fn scannable_files(root: &Path) -> Vec<PathBuf> {
    fn walk(dir: &Path, out: &mut Vec<PathBuf>) {
        let Ok(entries) = fs::read_dir(dir) else { return };
        for entry in entries.flatten() {
            let path = entry.path();
            if path.is_dir() {
                walk(&path, out);
            } else if path.extension().is_some_and(|e| e == "rs") {
                out.push(path);
            }
        }
    }
    let mut out = Vec::new();
    let crates = root.join("crates");
    for entry in fs::read_dir(&crates).expect("crates/ must exist").flatten() {
        let src = entry.path().join("src");
        if src.is_dir() {
            walk(&src, &mut out);
        }
    }
    for entry in fs::read_dir(root).expect("repo root must list").flatten() {
        let path = entry.path();
        if path.extension().is_some_and(|e| e == "md") {
            out.push(path);
        }
    }
    out.sort();
    out
}

/// A well-formed stable code: `B` followed by exactly three digits.
fn is_code(s: &str) -> bool {
    s.len() == 4 && s.starts_with('B') && s[1..].bytes().all(|b| b.is_ascii_digit())
}

/// Codes passed to `Diagnostic::new` in `text`: the first `"Bxxx"`
/// string literal within a short window after each call site.
fn emitted_codes(text: &str, out: &mut BTreeMap<String, Vec<String>>, file: &str) {
    for (idx, _) in text.match_indices("Diagnostic::new(") {
        let window = &text[idx..(idx + 200).min(text.len())];
        let Some(q) = window.find("\"B") else { continue };
        let lit = &window[q + 1..];
        let Some(end) = lit.find('"') else { continue };
        let code = &lit[..end];
        if is_code(code) {
            out.entry(code.to_string()).or_default().push(file.to_string());
        }
    }
}

/// Codes in documented table rows: `| Bxxx |` cells in module docs and
/// markdown tables.
fn documented_codes(text: &str, out: &mut BTreeMap<String, Vec<String>>, file: &str) {
    for line in text.lines() {
        let row = line.trim_start().trim_start_matches("//!").trim_start();
        let Some(rest) = row.strip_prefix('|') else { continue };
        let Some(cell) = rest.split('|').next() else { continue };
        let cell = cell.trim();
        if is_code(cell) {
            out.entry(cell.to_string()).or_default().push(file.to_string());
        }
    }
}

#[test]
fn diagnostic_codes_do_not_drift() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let mut emitted: BTreeMap<String, Vec<String>> = BTreeMap::new();
    let mut documented: BTreeMap<String, Vec<String>> = BTreeMap::new();
    for path in scannable_files(root) {
        let text = fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
        let name = path.strip_prefix(root).unwrap_or(&path).display().to_string();
        emitted_codes(&text, &mut emitted, &name);
        documented_codes(&text, &mut documented, &name);
    }

    let registry: Vec<&str> = CODES.iter().map(|c| c.code).collect();
    let mut sorted = registry.clone();
    sorted.sort_unstable();
    sorted.dedup();
    assert_eq!(registry, sorted, "CODES must be sorted and duplicate-free");
    for c in CODES {
        assert!(is_code(c.code), "malformed registry code {:?}", c.code);
        assert!(!c.summary.is_empty() && !c.explain.is_empty(), "{}: empty docs", c.code);
    }

    let emitted_set: Vec<&str> = emitted.keys().map(String::as_str).collect();
    assert_eq!(
        emitted_set, registry,
        "emitted codes and the CODES registry drifted \
         (left: emission sites, right: registry)"
    );

    let documented_set: Vec<&str> = documented.keys().map(String::as_str).collect();
    assert_eq!(
        documented_set, registry,
        "documented code tables and the CODES registry drifted \
         (left: table rows, right: registry)"
    );
    for (code, files) in &documented {
        assert_eq!(
            files.len(),
            1,
            "{code} must appear in exactly one documented table row, found: {files:?}"
        );
    }
}
