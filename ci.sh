#!/usr/bin/env bash
# The repository's CI gate: build, test, telemetry self-check, perf
# regression diff against the committed baselines, and lint the zoo
# corpus. Everything here is hermetic (no network, no extra tools
# beyond cargo + coreutils) and leaves the tree exactly as it found it.
#
# Usage:  ./ci.sh
# Env:    BDDFC_BENCH_THRESHOLD  max allowed median_ns growth in percent
#                                before bench_diff fails (default 100,
#                                i.e. 2x — the in-tree harness guards
#                                coarse regressions, and shared-runner
#                                medians over 10 iterations routinely
#                                swing tens of percent; tighten locally
#                                on quiet hardware).
#         BDDFC_SKIP_BENCH=1     skip the bench regression step (the
#                                slowest stage) for a quick pre-push run.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "==> bddfc-prof --check (deterministic telemetry self-check)"
cargo run -q --release -p bddfc-bench --bin bddfc-prof -- --workload e13 --check

if [ "${BDDFC_SKIP_BENCH:-0}" != "1" ]; then
    echo "==> benches vs committed BENCH_*.json baselines"
    threshold="${BDDFC_BENCH_THRESHOLD:-100}"
    tmp=$(mktemp -d)
    trap 'rm -rf "$tmp"' EXIT
    targets="chase join rewrite types pipeline"
    for t in $targets; do
        cp "crates/bench/BENCH_$t.json" "$tmp/BENCH_$t.baseline.json"
    done
    # The bench binaries append fresh rows to the committed files (their
    # cwd under cargo is crates/bench/); bench_diff matches rows by
    # (name, threads) with last-occurrence-wins, so diffing the saved
    # baseline against the appended file compares old vs fresh.
    BDDFC_BENCH_JSON=1 cargo bench --workspace
    for t in $targets; do
        cargo run -q --release -p bddfc-bench --bin bench_diff -- \
            "$tmp/BENCH_$t.baseline.json" "crates/bench/BENCH_$t.json" \
            --threshold "$threshold"
        # Restore the committed baseline so the gate leaves a clean tree.
        cp "$tmp/BENCH_$t.baseline.json" "crates/bench/BENCH_$t.json"
    done
else
    echo "==> benches skipped (BDDFC_SKIP_BENCH=1)"
fi

echo "==> bddfc-lint --zoo --deny error"
cargo run -q --release -p bddfc-lint --bin bddfc-lint -- --zoo --deny error

echo "==> bddfc-lint tests/corpus --deny-prefix B00 (corpus hygiene gate)"
cargo run -q --release -p bddfc-lint --bin bddfc-lint -- \
    tests/corpus/*.dlg --deny-prefix B00

echo "==> bddfc-analyze --zoo byte-identity across BDDFC_THREADS {1,2,7}"
atmp=$(mktemp -d)
for n in 1 2 7; do
    BDDFC_THREADS=$n cargo run -q --release -p bddfc-analyze --bin bddfc-analyze -- \
        --zoo --json > "$atmp/analyze.$n.json"
done
diff -u "$atmp/analyze.1.json" "$atmp/analyze.2.json"
diff -u "$atmp/analyze.1.json" "$atmp/analyze.7.json"
rm -rf "$atmp"

echo "==> bddfc-fuzz --replay tests/corpus (committed differential corpus)"
cargo run -q --release -p bddfc-fuzz --bin bddfc-fuzz -- --replay tests/corpus

echo "==> bddfc-fuzz --budget-ms 5000 (fresh-seed differential smoke)"
cargo run -q --release -p bddfc-fuzz --bin bddfc-fuzz -- --seed 1 --budget-ms 5000

echo "==> bddfc-fuzz join_kernel_vs_tuple_oracle (batch kernel vs tuple oracle)"
cargo run -q --release -p bddfc-fuzz --bin bddfc-fuzz -- \
    --seed 1 --budget-ms 5000 --prop join_kernel_vs_tuple_oracle

echo "==> bddfc-serve golden transcript (incremental service smoke)"
cargo run -q --release -p bddfc-serve --bin bddfc-serve -- tests/serve/session.dlg \
    < tests/serve/session.commands | diff -u tests/serve/session.golden -

echo "==> bddfc-serve --metrics-tcp scrape (Prometheus exposition smoke)"
# Drive the golden session through a live server over a fifo, scrape the
# metrics endpoint mid-session with bddfc-top (the only TCP client this
# gate needs), then quit and diff the transcript as usual.
mtmp=$(mktemp -d)
mkfifo "$mtmp/in"
./target/release/bddfc-serve tests/serve/session.dlg --metrics-tcp 0 \
    < "$mtmp/in" > "$mtmp/out" 2> "$mtmp/err" &
serve_pid=$!
exec 3> "$mtmp/in"
addr=""
for _ in $(seq 1 100); do
    addr=$(sed -n 's/^bddfc-serve: metrics on //p' "$mtmp/err")
    [ -n "$addr" ] && break
    sleep 0.1
done
[ -n "$addr" ] || { echo "ci: metrics endpoint never announced"; cat "$mtmp/err"; exit 1; }
grep -v '^quit$' tests/serve/session.commands >&3
scrape=""
for _ in $(seq 1 100); do
    scrape=$(./target/release/bddfc-top --addr "$addr" --raw)
    echo "$scrape" | grep -q 'bddfc_requests_total{command="query"} 3' && break
    sleep 0.1
done
echo "$scrape" | grep -q '^# TYPE bddfc_requests_total counter$' \
    || { echo "ci: scrape is missing its TYPE headers"; printf '%s\n' "$scrape"; exit 1; }
echo "$scrape" | grep -q 'bddfc_requests_total{command="query"} 3' \
    || { echo "ci: scrape never showed the session's request counters"; printf '%s\n' "$scrape"; exit 1; }
./target/release/bddfc-top --addr "$addr" --once | grep -q '^query ' \
    || { echo "ci: bddfc-top --once rendered no query row"; exit 1; }
echo quit >&3
exec 3>&-
wait "$serve_pid"
diff -u tests/serve/session.golden "$mtmp/out"
rm -rf "$mtmp"

echo "==> bddfc-fuzz serve_vs_scratch_chase (incremental serve vs from-scratch chase)"
cargo run -q --release -p bddfc-fuzz --bin bddfc-fuzz -- \
    --seed 1 --budget-ms 5000 --prop serve_vs_scratch_chase

echo "==> bddfc-fuzz static_bound_vs_observed_rounds (certificates vs the real chase)"
cargo run -q --release -p bddfc-fuzz --bin bddfc-fuzz -- \
    --seed 1 --budget-ms 5000 --prop static_bound_vs_observed_rounds

echo "ci: ok"
